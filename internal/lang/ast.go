package lang

// The abstract syntax tree. Nodes carry the line of their defining token
// for error reporting; the reference interpreter (internal/interp) walks
// this same tree, so it is the shared semantic definition.

// File is one parsed module.
type File struct {
	Name    string
	Imports []string // imported module names
	Consts  []*ConstDecl
	Globals []*VarDecl
	Procs   []*ProcDecl
}

// ConstDecl is a module-level named constant.
type ConstDecl struct {
	Name string
	Val  uint16
	Line int
}

// VarDecl declares one variable, optionally initialized (globals only may
// carry an initializer used at load time; proc-local initializers become
// assignments).
type VarDecl struct {
	Name string
	Init Expr // nil when absent
	Line int
}

// ProcDecl is one procedure.
type ProcDecl struct {
	Name       string
	Params     []string
	Body       *Block
	Line       int
	NumResults int // fixed by sema from the return statements
}

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
}

// Stmt is implemented by all statements.
type Stmt interface{ stmtLine() int }

// DeclStmt declares proc-local variables.
type DeclStmt struct {
	Vars []*VarDecl
	Line int
}

// AssignStmt assigns call results (possibly several) or one expression to
// targets. Targets are variables; a single target with a Deref receives a
// store through a pointer.
type AssignStmt struct {
	Targets []string
	Value   Expr
	Line    int
}

// ExprStmt evaluates an expression for effect, discarding results.
type ExprStmt struct {
	X    Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // nil when absent
	Line int
}

// WhileStmt is the loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Line int
}

// ReturnStmt returns zero or more results.
type ReturnStmt struct {
	Values []Expr
	Line   int
}

func (s *DeclStmt) stmtLine() int   { return s.Line }
func (s *AssignStmt) stmtLine() int { return s.Line }
func (s *ExprStmt) stmtLine() int   { return s.Line }
func (s *IfStmt) stmtLine() int     { return s.Line }
func (s *WhileStmt) stmtLine() int  { return s.Line }
func (s *ReturnStmt) stmtLine() int { return s.Line }

// Expr is implemented by all expressions.
type Expr interface{ exprLine() int }

// NumLit is a literal word.
type NumLit struct {
	Val  uint16
	Line int
}

// VarRef names a local, global, or constant.
type VarRef struct {
	Name string
	Line int
}

// AddrOf is &x for a local variable (§7.4 pointers to locals).
type AddrOf struct {
	Name string
	Line int
}

// UnaryExpr is -x, !x or ~x.
type UnaryExpr struct {
	Op   Kind
	X    Expr
	Line int
}

// BinExpr is a binary operation, including comparisons and the
// short-circuit && and ||.
type BinExpr struct {
	Op   Kind
	L, R Expr
	Line int
}

// CallExpr calls a procedure: local (Module empty), imported
// (Module.Proc), or a builtin.
type CallExpr struct {
	Module string
	Proc   string
	Args   []Expr
	Line   int
}

// ProcRef is a procedure named as a value — the argument of cocreate. It
// compiles to the procedure's packed descriptor.
type ProcRef struct {
	Module string // empty for a procedure of this module
	Proc   string
	Line   int
}

func (e *ProcRef) exprLine() int { return e.Line }

func (e *NumLit) exprLine() int    { return e.Line }
func (e *VarRef) exprLine() int    { return e.Line }
func (e *AddrOf) exprLine() int    { return e.Line }
func (e *UnaryExpr) exprLine() int { return e.Line }
func (e *BinExpr) exprLine() int   { return e.Line }
func (e *CallExpr) exprLine() int  { return e.Line }

// Builtin names. A CallExpr whose Module is empty and whose Proc matches
// one of these is a primitive of the machine rather than a procedure call.
var builtinArity = map[string]struct{ in, out int }{
	"out":      {1, 0},  // emit a word to the output record
	"load":     {1, 1},  // read a word through a pointer
	"store":    {2, 0},  // store(p, v): write through a pointer
	"alloc":    {1, 1},  // alloc(constWords): frame-heap record
	"dealloc":  {1, 0},  // free an alloc'd record
	"cocreate": {1, 1},  // cocreate(procref): new suspended context (§3)
	"transfer": {-1, 1}, // transfer(ctx, args...): general XFER
	"retctx":   {0, 1},  // the returnContext global
	"myctx":    {0, 1},  // the running frame as a context word
	"retain":   {0, 0},  // mark the current frame retained (§4)
	"free":     {1, 0},  // free a context explicitly
	"halt":     {0, 0},
	"trap":     {1, 1}, // trap(constCode): transfer to the trap handler; its result comes back
	"settrap":  {1, 0}, // settrap(procref): install the trap handler context
}

// IsBuiltin reports whether name is a language builtin.
func IsBuiltin(name string) bool {
	_, ok := builtinArity[name]
	return ok
}

// containsCall reports whether evaluating e can transfer control (a call
// or a transfer builtin) — the trigger for the §5.2 spill discipline.
func containsCall(e Expr) bool {
	switch x := e.(type) {
	case *NumLit, *VarRef, *AddrOf:
		return false
	case *UnaryExpr:
		return containsCall(x.X)
	case *BinExpr:
		return containsCall(x.L) || containsCall(x.R)
	case *CallExpr:
		// Builtins other than transfer execute inline without disturbing
		// the words below them on the stack; real procedure calls and
		// transfer make the whole stack the argument record.
		if x.Module == "" && IsBuiltin(x.Proc) && x.Proc != "transfer" {
			for _, a := range x.Args {
				if containsCall(a) {
					return true
				}
			}
			return false
		}
		return true
	}
	return true
}
