package snapshot

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/frames"
	"repro/internal/ifu"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/linker"
	"repro/internal/regbank"
)

// coroutineModule mirrors the core test program: coroutine transfers, OUT
// traffic, and frame churn, so a mid-run continuation exercises every
// section of the wire format.
func coroutineModule() *image.Module {
	mod := &image.Module{Name: "co", Imports: []image.Import{{Module: "co", Proc: "gen"}}}
	main := &image.Proc{Name: "main", NumArgs: 0, NumLocals: 1}
	{
		var a image.Asm
		a.EmitLoadImportDesc(0)
		a.Emit(isa.COCREATE)
		a.Emit(isa.SL0)
		a.Emit(isa.LI5)
		a.Emit(isa.LL0)
		a.Emit(isa.XFERO)
		a.Emit(isa.OUT)
		a.Emit(isa.LI7)
		a.Emit(isa.LL0)
		a.Emit(isa.XFERO)
		a.Emit(isa.OUT)
		a.Emit(isa.LL0)
		a.Emit(isa.FREE)
		a.Emit(isa.RET)
		main.Body = a.Fragment()
	}
	gen := &image.Proc{Name: "gen", NumArgs: 1, NumLocals: 2}
	{
		var a image.Asm
		a.Emit(isa.LRC)
		a.Emit(isa.SL1)
		a.Emit(isa.LL0)
		a.Emit(isa.LI1)
		a.Emit(isa.ADD)
		a.Emit(isa.LL1)
		a.Emit(isa.XFERO)
		a.Emit(isa.LI2)
		a.Emit(isa.MUL)
		a.Emit(isa.LL1)
		a.Emit(isa.XFERO)
		a.Emit(isa.RET)
		gen.Body = a.Fragment()
	}
	mod.Procs = []*image.Proc{main, gen}
	return mod
}

func buildImage(t *testing.T, cfg core.Config) *core.LoadedImage {
	t.Helper()
	mod := coroutineModule()
	prog, _, err := linker.Link([]*image.Module{mod}, "co", "main", linker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := core.LoadImage(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// parkAt runs the image's entry for exactly k instructions and snapshots.
func parkAt(t *testing.T, img *core.LoadedImage, k uint64) *core.Continuation {
	t.Helper()
	m, err := img.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	m.SetRunBudget(k)
	if _, err := m.Call(img.Entry()); !errors.Is(err, core.ErrMaxSteps) {
		t.Fatalf("cut at %d: err = %v, want ErrMaxSteps", k, err)
	}
	c, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCodecRoundTrip: Decode(Encode(c)) must be deep-equal to c — every
// register, bank, histogram bucket and heap-shadow entry — at every
// instruction boundary of the program, and the decoded continuation must
// resume to the same end state as the original.
func TestCodecRoundTrip(t *testing.T) {
	cfg := core.ConfigFastCalls
	cfg.HeapCheck = true // exercise the heap shadow map section
	img := buildImage(t, cfg)

	m, err := img.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(img.Entry()); err != nil {
		t.Fatal(err)
	}
	total := m.Metrics().Instructions
	wantRes := m.Results()

	for k := uint64(1); k < total; k++ {
		c := parkAt(t, img, k)
		enc := Encode(c)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("cut %d: Decode: %v", k, err)
		}
		if !reflect.DeepEqual(got, c) {
			t.Fatalf("cut %d: decoded continuation differs:\n got %+v\nwant %+v", k, got, c)
		}
		// Determinism: re-encoding the decoded value is byte-identical.
		if enc2 := Encode(got); !reflect.DeepEqual(enc2, enc) {
			t.Fatalf("cut %d: encoding is not deterministic", k)
		}
		// The decoded continuation actually resumes.
		m2, err := img.NewMachine()
		if err != nil {
			t.Fatal(err)
		}
		if err := m2.Restore(got); err != nil {
			t.Fatalf("cut %d: Restore(decoded): %v", k, err)
		}
		if err := m2.Run(); err != nil {
			t.Fatalf("cut %d: resume: %v", k, err)
		}
		if !reflect.DeepEqual(m2.Results(), wantRes) {
			t.Fatalf("cut %d: resumed results %v, want %v", k, m2.Results(), wantRes)
		}
	}
}

// TestCodecRejectsCorruptInput: truncations and hostile length prefixes
// must fail with ErrCodec, never panic or over-allocate.
func TestCodecRejectsCorruptInput(t *testing.T) {
	img := buildImage(t, core.ConfigFastCalls)
	enc := Encode(parkAt(t, img, 10))

	if _, err := Decode(nil); !errors.Is(err, ErrCodec) {
		t.Fatalf("nil input: err = %v, want ErrCodec", err)
	}
	if _, err := Decode([]byte("XXX\x01junk")); !errors.Is(err, ErrCodec) {
		t.Fatalf("bad magic: err = %v, want ErrCodec", err)
	}
	bad := append([]byte(nil), enc...)
	bad[3] = 99
	if _, err := Decode(bad); !errors.Is(err, ErrCodec) {
		t.Fatalf("bad version: err = %v, want ErrCodec", err)
	}
	// Every truncation must error (the full buffer must not).
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n]); !errors.Is(err, ErrCodec) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCodec", n, err)
		}
	}
	// A length prefix claiming more elements than the buffer holds must
	// be caught by the bound check, not attempted.
	bad = append([]byte(nil), enc...)
	bad[4], bad[5], bad[6], bad[7] = 0xff, 0xff, 0xff, 0x7f // hash length
	if _, err := Decode(bad); !errors.Is(err, ErrCodec) {
		t.Fatalf("hostile length: err = %v, want ErrCodec", err)
	}
	// Trailing garbage is rejected too.
	if _, err := Decode(append(append([]byte(nil), enc...), 0)); !errors.Is(err, ErrCodec) {
		t.Fatalf("trailing bytes: err = %v, want ErrCodec", err)
	}
}

// TestCodecCoversEveryField pins the field counts of the structs the
// codec serializes by hand. If one of these fails, a field was added (or
// removed) without updating Encode/Decode — update the codec, bump
// codecVersion if the wire format changes, then adjust the count here.
func TestCodecCoversEveryField(t *testing.T) {
	counts := map[string]struct{ got, want int }{
		"core.Continuation": {reflect.TypeOf(core.Continuation{}).NumField(), 23},
		"core.Metrics":      {reflect.TypeOf(core.Metrics{}).NumField(), 29},
		"core.TrapSave":     {reflect.TypeOf(core.TrapSave{}).NumField(), 2},
		"core.ConfigKey":    {reflect.TypeOf(core.ConfigKey{}).NumField(), 6},
		"ifu.Entry":         {reflect.TypeOf(ifu.Entry{}).NumField(), 6},
		"regbank.BankState": {reflect.TypeOf(regbank.BankState{}).NumField(), 4},
		"regbank.State":     {reflect.TypeOf(regbank.State{}).NumField(), 2},
		"frames.State":      {reflect.TypeOf(frames.State{}).NumField(), 3},
		"frames.Stats":      {reflect.TypeOf(frames.Stats{}).NumField(), 7},
	}
	for name, c := range counts {
		if c.got != c.want {
			t.Errorf("%s has %d fields, codec was written for %d — update the codec and this count", name, c.got, c.want)
		}
	}
}
