// Package snapshot serializes core continuations and parks them in a
// registry-side session table, so a run cut by its step budget (or by OUT
// backpressure) can leave the machine entirely — freeing the pooled
// machine for other tenants — and later resume on any machine booted over
// an image with the same content hash, byte-identical to a run that was
// never interrupted.
//
// The wire format is a versioned, length-checked little-endian binary: a
// continuation is dominated by the dirty-memory delta and the metrics
// histograms, and both encode compactly (buckets as value/count pairs,
// reconstructed exactly via Histogram.ObserveN). Nothing in the format is
// executable — a decoded continuation is validated again by
// core.Machine.Restore before it touches a machine.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/frames"
	"repro/internal/ifu"
	"repro/internal/mem"
	"repro/internal/regbank"
	"repro/internal/stats"
)

// ErrCodec is wrapped by every Decode failure: truncated input, a version
// this build does not speak, or a length prefix that contradicts the
// buffer size.
var ErrCodec = errors.New("snapshot: malformed continuation encoding")

// codecVersion is bumped whenever the wire format changes; a decoder
// refuses versions it does not know rather than guessing.
const codecVersion = 1

var magic = [3]byte{'F', 'P', 'C'}

// numKinds mirrors the core transfer-kind count; the codec writes it into
// the stream so a decode under a mismatched build fails loudly.
const numKinds = len(core.Metrics{}.Transfers)

type writer struct{ buf []byte }

func (w *writer) u8(v byte) { w.buf = append(w.buf, v) }
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) str(s string) { w.u32(uint32(len(s))); w.buf = append(w.buf, s...) }
func (w *writer) words(v []uint16) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.u16(x)
	}
}

func (w *writer) hist(h *stats.Histogram) {
	keys, counts := h.Buckets()
	w.u32(uint32(len(keys)))
	for i, k := range keys {
		w.u64(uint64(int64(k)))
		w.u64(counts[i])
	}
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrCodec, what, r.off)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail("truncated")
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) bool() bool { return r.u8() != 0 }

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// count reads a length prefix and bounds it by what the remaining buffer
// could actually hold at elemBytes per element, so a corrupt prefix fails
// instead of allocating gigabytes.
func (r *reader) count(elemBytes int) int {
	n := int(r.u32())
	if r.err == nil && n*elemBytes > len(r.buf)-r.off {
		r.fail("length prefix exceeds buffer")
		return 0
	}
	return n
}

func (r *reader) str() string {
	n := r.count(1)
	return string(r.take(n))
}

func (r *reader) words() []uint16 {
	n := r.count(2)
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = r.u16()
	}
	return out
}

func (r *reader) hist(h *stats.Histogram) {
	n := r.count(16)
	for i := 0; i < n && r.err == nil; i++ {
		v := int(int64(r.u64()))
		c := r.u64()
		h.ObserveN(v, c)
	}
}

// Encode serializes a continuation. The encoding is deterministic: equal
// continuations produce equal bytes (map-backed state is emitted in
// sorted order).
func Encode(c *core.Continuation) []byte {
	w := &writer{buf: make([]byte, 0, 1024+2*len(c.MemWords))}
	w.buf = append(w.buf, magic[:]...)
	w.u8(codecVersion)

	w.str(c.Hash)
	w.u32(uint32(c.Cfg.ReturnStackDepth))
	w.u32(uint32(c.Cfg.RegBanks))
	w.u32(uint32(c.Cfg.BankWords))
	w.u32(uint32(c.Cfg.FreeFrameStack))
	w.u32(uint32(c.Cfg.StdFrameWords))
	w.bool(c.Cfg.HeapCheck)

	w.u32(c.PC)
	w.u16(c.LF)
	w.u16(c.GF)
	w.u32(c.CodeBase)
	w.bool(c.CBValid)
	w.u16(c.RetCtx)
	w.words(c.Stack)
	w.u16(uint16(c.CurFSI))
	w.bool(c.CurRet)
	w.u32(uint32(int32(c.StackBank)))
	w.bool(c.Halted)

	w.u16(c.TrapCtx)
	w.u32(uint32(len(c.TrapSaves)))
	for _, ts := range c.TrapSaves {
		w.u16(ts.CalleeLF)
		w.words(ts.Words)
	}

	w.u32(uint32(len(c.RS)))
	for _, e := range c.RS {
		w.u16(e.LF)
		w.u16(e.GF)
		w.u32(e.PC)
		w.u16(uint16(e.FSI))
		w.bool(e.Retained)
		w.u16(e.CalleeLF)
	}

	w.u32(uint32(len(c.Banks.Banks)))
	for _, b := range c.Banks.Banks {
		w.words(b.Words)
		w.u64(b.Dirty)
		w.u32(uint32(b.Owner))
		w.u64(b.Age)
	}
	w.u64(c.Banks.Clock)
	w.words(c.FreeFrames)

	w.u64(uint64(c.Heap.Bump))
	w.u64(c.Heap.Stats.FastAllocs)
	w.u64(c.Heap.Stats.TrapAllocs)
	w.u64(c.Heap.Stats.Frees)
	w.u64(c.Heap.Stats.Live)
	w.u64(c.Heap.Stats.RequestedWords)
	w.u64(c.Heap.Stats.GrantedWords)
	w.u64(c.Heap.Stats.CarvedWords)
	w.bool(c.Heap.Live != nil)
	if c.Heap.Live != nil {
		addrs := make([]int, 0, len(c.Heap.Live))
		for a := range c.Heap.Live {
			addrs = append(addrs, int(a))
		}
		sort.Ints(addrs)
		w.u32(uint32(len(addrs)))
		for _, a := range addrs {
			w.u16(uint16(a))
			w.u32(uint32(c.Heap.Live[mem.Addr(a)]))
		}
	}

	w.u32(uint32(c.MemLo))
	w.words(c.MemWords)

	w.bool(c.Metrics != nil)
	if c.Metrics != nil {
		encodeMetrics(w, c.Metrics)
	}
	w.words(c.Output)
	return w.buf
}

func encodeMetrics(w *writer, m *core.Metrics) {
	w.u64(m.Instructions)
	w.u64(m.Cycles)
	w.u64(m.ChargedRefs)
	w.u64(m.CodeReads)
	w.u32(uint32(numKinds))
	for k := 0; k < numKinds; k++ {
		w.u64(m.Transfers[k])
	}
	for _, v := range []uint64{
		m.Creates, m.FastTransfers,
		m.RSHits, m.RSMisses, m.RSEvicted, m.RSFlushed,
		m.BankHits, m.BankMisses, m.BankRenames, m.BankOverflows,
		m.BankUnderflows, m.BankFlushWords, m.BankReloadWords, m.PointerFlushes,
		m.FFHits, m.FFMisses, m.FFPushes,
		m.ArgWordsMoved, m.HeaderReads,
		m.LocalVarRefs, m.GlobalVarRefs, m.PointerRefs,
	} {
		w.u64(v)
	}
	for k := 0; k < numKinds; k++ {
		w.hist(&m.RefsPer[k])
	}
	for k := 0; k < numKinds; k++ {
		w.hist(&m.CyclesPer[k])
	}
}

// Decode parses an encoded continuation. The result is structurally
// valid (every length checked against the buffer) but not yet trusted:
// Machine.Restore re-validates it against the target machine's image and
// configuration.
func Decode(buf []byte) (*core.Continuation, error) {
	r := &reader{buf: buf}
	if string(r.take(3)) != string(magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCodec)
	}
	if v := r.u8(); v != codecVersion {
		return nil, fmt.Errorf("%w: version %d, this build speaks %d", ErrCodec, v, codecVersion)
	}

	c := &core.Continuation{}
	c.Hash = r.str()
	c.Cfg.ReturnStackDepth = int(r.u32())
	c.Cfg.RegBanks = int(r.u32())
	c.Cfg.BankWords = int(r.u32())
	c.Cfg.FreeFrameStack = int(r.u32())
	c.Cfg.StdFrameWords = int(r.u32())
	c.Cfg.HeapCheck = r.bool()

	c.PC = r.u32()
	c.LF = r.u16()
	c.GF = r.u16()
	c.CodeBase = r.u32()
	c.CBValid = r.bool()
	c.RetCtx = r.u16()
	c.Stack = r.words()
	c.CurFSI = int16(r.u16())
	c.CurRet = r.bool()
	c.StackBank = int(int32(r.u32()))
	c.Halted = r.bool()

	c.TrapCtx = r.u16()
	if n := r.count(2); n > 0 {
		c.TrapSaves = make([]core.TrapSave, n)
		for i := range c.TrapSaves {
			c.TrapSaves[i].CalleeLF = r.u16()
			c.TrapSaves[i].Words = r.words()
		}
	}

	if n := r.count(13); n > 0 {
		c.RS = make([]ifu.Entry, n)
		for i := range c.RS {
			c.RS[i] = ifu.Entry{
				LF: r.u16(), GF: r.u16(), PC: r.u32(),
				FSI: int16(r.u16()), Retained: r.bool(), CalleeLF: r.u16(),
			}
		}
	}

	if n := r.count(24); n > 0 {
		c.Banks.Banks = make([]regbank.BankState, n)
		for i := range c.Banks.Banks {
			c.Banks.Banks[i] = regbank.BankState{
				Words: r.words(), Dirty: r.u64(),
				Owner: int32(r.u32()), Age: r.u64(),
			}
		}
	}
	c.Banks.Clock = r.u64()
	c.FreeFrames = r.words()

	c.Heap.Bump = int(r.u64())
	c.Heap.Stats = frames.Stats{
		FastAllocs: r.u64(), TrapAllocs: r.u64(), Frees: r.u64(),
		Live: r.u64(), RequestedWords: r.u64(),
		GrantedWords: r.u64(), CarvedWords: r.u64(),
	}
	if r.bool() {
		n := r.count(6)
		c.Heap.Live = make(map[mem.Addr]int, n)
		for i := 0; i < n && r.err == nil; i++ {
			a := r.u16()
			c.Heap.Live[a] = int(r.u32())
		}
	}

	c.MemLo = int(r.u32())
	c.MemWords = r.words()

	if r.bool() {
		c.Metrics = &core.Metrics{}
		decodeMetrics(r, c.Metrics)
	}
	c.Output = r.words()

	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(buf)-r.off)
	}
	return c, nil
}

func decodeMetrics(r *reader, m *core.Metrics) {
	m.Instructions = r.u64()
	m.Cycles = r.u64()
	m.ChargedRefs = r.u64()
	m.CodeReads = r.u64()
	if n := r.u32(); n != uint32(numKinds) && r.err == nil {
		r.fail("transfer-kind count mismatch")
		return
	}
	for k := 0; k < numKinds; k++ {
		m.Transfers[k] = r.u64()
	}
	for _, p := range []*uint64{
		&m.Creates, &m.FastTransfers,
		&m.RSHits, &m.RSMisses, &m.RSEvicted, &m.RSFlushed,
		&m.BankHits, &m.BankMisses, &m.BankRenames, &m.BankOverflows,
		&m.BankUnderflows, &m.BankFlushWords, &m.BankReloadWords, &m.PointerFlushes,
		&m.FFHits, &m.FFMisses, &m.FFPushes,
		&m.ArgWordsMoved, &m.HeaderReads,
		&m.LocalVarRefs, &m.GlobalVarRefs, &m.PointerRefs,
	} {
		*p = r.u64()
	}
	for k := 0; k < numKinds; k++ {
		r.hist(&m.RefsPer[k])
	}
	for k := 0; k < numKinds; k++ {
		r.hist(&m.CyclesPer[k])
	}
}
