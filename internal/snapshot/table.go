package snapshot

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Table errors.
var (
	// ErrQuota rejects a park that would exceed the tenant's resident
	// session quota.
	ErrQuota = errors.New("snapshot: tenant session quota exhausted")
	// ErrNotFound reports a resume for a session that does not exist, has
	// expired, was evicted, or belongs to a different tenant (the three
	// are deliberately indistinguishable to the caller).
	ErrNotFound = errors.New("snapshot: no such session")
)

// Session is one parked computation: an encoded continuation plus the
// cumulative accounting the serving layer reports across segments. The
// table owns Expires; everything else is the caller's.
type Session struct {
	ID     string
	Tenant string
	Hash   string // content hash of the image the continuation resumes on
	Enc    []byte // encoded continuation (Encode)

	// Cumulative accounting across every parked segment so far.
	Steps    uint64
	Cycles   uint64
	Refs     uint64
	Segments int

	Expires time.Time
}

// TableConfig bounds the session table.
type TableConfig struct {
	MaxSessions  int           // resident cap; LRU-evicted beyond it (default 1024)
	MaxPerTenant int           // per-tenant resident cap; parks beyond it fail with ErrQuota (0 = no per-tenant cap)
	MaxBytes     int64         // resident encoded-bytes budget; LRU-evicted beyond it (0 = unlimited)
	TTL          time.Duration // session lifetime from its latest park (default 5m)
	Now          func() time.Time
}

func (c TableConfig) withDefaults() TableConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.TTL <= 0 {
		c.TTL = 5 * time.Minute
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats is the table's cumulative accounting, exported as fpc_session_*.
type Stats struct {
	Parked        uint64 // sessions parked (incl. re-parks of resumed sessions)
	Resumed       uint64 // sessions handed back out by Take
	Expired       uint64 // sessions dropped past their TTL
	Evicted       uint64 // sessions LRU-evicted by the count or byte budget
	QuotaRejected uint64 // parks refused by a tenant quota
	NotFound      uint64 // Takes that found nothing (incl. expired/evicted)
	Resident      int    // sessions currently parked
	Bytes         int64  // encoded bytes currently parked
}

// Table is the parked-session store: an LRU over encoded continuations
// with a TTL, a global count/byte budget, and per-tenant quotas. Safe for
// concurrent use.
type Table struct {
	mu        sync.Mutex
	cfg       TableConfig
	lru       *list.List // of *Session; front = most recently parked
	byID      map[string]*list.Element
	perTenant map[string]int
	bytes     int64
	stats     Stats
}

// NewTable creates a session table.
func NewTable(cfg TableConfig) *Table {
	return &Table{
		cfg:       cfg.withDefaults(),
		lru:       list.New(),
		byID:      make(map[string]*list.Element),
		perTenant: make(map[string]int),
	}
}

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("snapshot: no entropy for session ids: " + err.Error())
	}
	return "s-" + hex.EncodeToString(b[:])
}

// Park stores s and returns its session id, assigning a fresh one when
// s.ID is empty (a re-park after a resumed segment keeps its id, so the
// client holds one handle for the whole computation). The table takes
// ownership of s.
func (t *Table) Park(s *Session) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.cfg.Now()
	t.purgeExpiredLocked(now)

	if s.ID == "" {
		s.ID = newSessionID()
	} else if el, ok := t.byID[s.ID]; ok {
		old := el.Value.(*Session)
		if old.Tenant != s.Tenant {
			t.stats.QuotaRejected++
			return "", fmt.Errorf("%w: id collision", ErrQuota)
		}
		t.removeLocked(el)
	}
	if t.cfg.MaxPerTenant > 0 && t.perTenant[s.Tenant] >= t.cfg.MaxPerTenant {
		t.stats.QuotaRejected++
		return "", ErrQuota
	}

	s.Expires = now.Add(t.cfg.TTL)
	t.byID[s.ID] = t.lru.PushFront(s)
	t.perTenant[s.Tenant]++
	t.bytes += int64(len(s.Enc))
	t.stats.Parked++

	// Budget enforcement: evict from the cold end, never the session just
	// parked (a park that was immediately evicted would be a silent drop).
	for t.lru.Len() > t.cfg.MaxSessions ||
		(t.cfg.MaxBytes > 0 && t.bytes > t.cfg.MaxBytes && t.lru.Len() > 1) {
		victim := t.lru.Back()
		if victim == nil || victim.Value.(*Session) == s {
			break
		}
		t.removeLocked(victim)
		t.stats.Evicted++
	}
	return s.ID, nil
}

// Take removes and returns the tenant's parked session. A missing,
// expired, evicted, or foreign session is uniformly ErrNotFound: the
// continuation is gone (or was never yours) and the computation must be
// re-submitted from the start.
func (t *Table) Take(tenant, id string) (*Session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.byID[id]
	if !ok {
		t.stats.NotFound++
		return nil, ErrNotFound
	}
	s := el.Value.(*Session)
	if s.Tenant != tenant {
		t.stats.NotFound++
		return nil, ErrNotFound
	}
	if !s.Expires.After(t.cfg.Now()) {
		t.removeLocked(el)
		t.stats.Expired++
		t.stats.NotFound++
		return nil, ErrNotFound
	}
	t.removeLocked(el)
	t.stats.Resumed++
	return s, nil
}

// Drop discards the tenant's parked session, reporting whether one was
// resident.
func (t *Table) Drop(tenant, id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.byID[id]
	if !ok || el.Value.(*Session).Tenant != tenant {
		return false
	}
	t.removeLocked(el)
	return true
}

// Stats returns a snapshot of the table's accounting.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.purgeExpiredLocked(t.cfg.Now())
	s := t.stats
	s.Resident = t.lru.Len()
	s.Bytes = t.bytes
	return s
}

func (t *Table) removeLocked(el *list.Element) {
	s := el.Value.(*Session)
	t.lru.Remove(el)
	delete(t.byID, s.ID)
	t.bytes -= int64(len(s.Enc))
	if t.perTenant[s.Tenant]--; t.perTenant[s.Tenant] <= 0 {
		delete(t.perTenant, s.Tenant)
	}
}

func (t *Table) purgeExpiredLocked(now time.Time) {
	for el := t.lru.Back(); el != nil; {
		prev := el.Prev()
		if !el.Value.(*Session).Expires.After(now) {
			t.removeLocked(el)
			t.stats.Expired++
		}
		el = prev
	}
}
