package snapshot

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestTable(cfg TableConfig, now *time.Time) *Table {
	if now != nil {
		cfg.Now = func() time.Time { return *now }
	}
	return NewTable(cfg)
}

func park(t *testing.T, tb *Table, tenant, id string, bytes int) string {
	t.Helper()
	got, err := tb.Park(&Session{ID: id, Tenant: tenant, Enc: make([]byte, bytes)})
	if err != nil {
		t.Fatalf("Park(%s): %v", tenant, err)
	}
	return got
}

func TestTableParkTake(t *testing.T) {
	tb := NewTable(TableConfig{})
	id := park(t, tb, "alice", "", 100)
	if id == "" {
		t.Fatal("no session id assigned")
	}

	// The wrong tenant cannot take it — and cannot even learn it exists.
	if _, err := tb.Take("bob", id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("foreign Take: err = %v, want ErrNotFound", err)
	}
	s, err := tb.Take("alice", id)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != id || s.Tenant != "alice" || len(s.Enc) != 100 {
		t.Fatalf("Take returned %+v", s)
	}
	// Take removes: a second resume of the same session fails.
	if _, err := tb.Take("alice", id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Take: err = %v, want ErrNotFound", err)
	}

	st := tb.Stats()
	if st.Parked != 1 || st.Resumed != 1 || st.NotFound != 2 || st.Resident != 0 || st.Bytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTableReparkKeepsID(t *testing.T) {
	tb := NewTable(TableConfig{})
	id := park(t, tb, "alice", "", 10)
	s, err := tb.Take("alice", id)
	if err != nil {
		t.Fatal(err)
	}
	// Re-park after a resumed segment keeps the client's handle stable.
	s.Enc = make([]byte, 20)
	id2, err := tb.Park(s)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("re-park changed the id: %s -> %s", id, id2)
	}
	if st := tb.Stats(); st.Resident != 1 || st.Bytes != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTableTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := newTestTable(TableConfig{TTL: time.Minute}, &now)
	id := park(t, tb, "alice", "", 10)

	now = now.Add(59 * time.Second)
	if _, ok := tb.byID[id]; !ok {
		t.Fatal("session gone before its TTL")
	}
	now = now.Add(2 * time.Second)
	if _, err := tb.Take("alice", id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired Take: err = %v, want ErrNotFound", err)
	}
	st := tb.Stats()
	if st.Expired != 1 || st.Resident != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTableLRUEviction(t *testing.T) {
	tb := NewTable(TableConfig{MaxSessions: 2})
	a := park(t, tb, "t", "", 1)
	b := park(t, tb, "t", "", 1)
	c := park(t, tb, "t", "", 1) // evicts a, the coldest

	if _, err := tb.Take("t", a); !errors.Is(err, ErrNotFound) {
		t.Fatalf("evicted session still takeable: %v", err)
	}
	for _, id := range []string{b, c} {
		if _, err := tb.Take("t", id); err != nil {
			t.Fatalf("Take(%s): %v", id, err)
		}
	}
	if st := tb.Stats(); st.Evicted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTableByteBudget(t *testing.T) {
	tb := NewTable(TableConfig{MaxBytes: 100})
	a := park(t, tb, "t", "", 60)
	b := park(t, tb, "t", "", 60) // 120 > 100: evicts a

	if _, err := tb.Take("t", a); !errors.Is(err, ErrNotFound) {
		t.Fatal("byte budget did not evict the coldest session")
	}
	if _, err := tb.Take("t", b); err != nil {
		t.Fatalf("the newly parked session must survive its own park: %v", err)
	}

	// A single session over the whole budget still parks (evicting it
	// immediately would silently drop the computation).
	big := park(t, tb, "t", "", 500)
	if _, err := tb.Take("t", big); err != nil {
		t.Fatalf("oversized single session: %v", err)
	}
}

func TestTableTenantQuota(t *testing.T) {
	tb := NewTable(TableConfig{MaxPerTenant: 2})
	park(t, tb, "alice", "", 1)
	park(t, tb, "alice", "", 1)
	if _, err := tb.Park(&Session{Tenant: "alice"}); !errors.Is(err, ErrQuota) {
		t.Fatalf("third park: err = %v, want ErrQuota", err)
	}
	// Other tenants are unaffected.
	park(t, tb, "bob", "", 1)
	st := tb.Stats()
	if st.QuotaRejected != 1 || st.Resident != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTableConcurrency(t *testing.T) {
	tb := NewTable(TableConfig{MaxSessions: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%4)
			for i := 0; i < 200; i++ {
				id, err := tb.Park(&Session{Tenant: tenant, Enc: make([]byte, 8)})
				if err != nil {
					continue
				}
				if s, err := tb.Take(tenant, id); err == nil {
					tb.Park(s)
				}
			}
		}(g)
	}
	wg.Wait()
	st := tb.Stats()
	if st.Resident < 0 || st.Bytes < 0 || st.Resident > 64 {
		t.Fatalf("stats = %+v", st)
	}
	if int64(st.Resident*8) != st.Bytes {
		t.Fatalf("byte accounting drifted: %+v", st)
	}
}
