// Package verify is the link-time bytecode verifier: a two-stage static
// analysis over the predecoded instruction stream of a linked program.
//
// Stage 1 — the summary engine (summary.go) — is a worklist abstract
// interpreter computing, for every reachable pc, an evaluation-stack depth
// interval plus (for programs whose transfer surface is statically
// disciplined) an abstract value per stack slot and definitely-assigned
// local (values.go). Procedures are analyzed once, CFA2-style, against a
// canonical [0,0] entry context — the engine's enterProc always delivers
// the argument record into frame locals and clears the stack — and
// tabulated: each call site reads the callee's result-depth summary, so
// recursion converges and every call site sees its own return depth
// rather than a join over unrelated callers. Transfers get the same
// treatment: XFERO sites with statically known targets feed per-region
// resume pools (the depths a suspended frame can be resumed with),
// COCREATE results and retctx/myctx words carry provenance, and STRAP
// with a known handler descriptor turns TRAPB/DIV into calls against the
// handler's result summary. The moment anything reachable could corrupt
// the facts this rests on (a raw store, an untracked FREE, a transfer to
// an unknown context), the analysis restarts with values off and falls
// back to the purely conservative interval semantics.
//
// Stage 2 — certificate derivation (certify.go) — re-walks the fixpoint
// and decides the stack-bounds certificate: whether every reachable
// instruction provably keeps the stack inside [0, isa.EvalStackDepth] and
// nothing reachable can corrupt the linkage the proof depends on. It also
// assembles the per-context report: entry kinds, resume-depth pools,
// result summaries and the reason codes explaining a withheld
// certificate.
//
// Diagnostics come in two grades. Error marks a pc where reaching it
// definitely fails or corrupts the machine — the program is rejected
// (Report.Admitted() == false). Warn marks what cannot be proven safe;
// the program is admitted, but any certificate-blocking Warn (Diag.Cert)
// withholds CertStackBounds.
package verify

import (
	"fmt"

	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/mem"
)

// maxDepth is the evaluation-stack capacity the analysis bounds against.
const maxDepth = isa.EvalStackDepth

// interval is an abstract stack depth: every concrete depth reaching the
// pc lies in [lo, hi].
type interval struct{ lo, hi int }

// top is the unknown depth: anything the machine accepts.
var top = interval{0, maxDepth}

func (a interval) join(b interval) interval {
	if b.lo < a.lo {
		a.lo = b.lo
	}
	if b.hi > a.hi {
		a.hi = b.hi
	}
	return a
}

func (a interval) exact() bool { return a.lo == a.hi }

// absState is the per-pc abstract state. The depth interval drives
// admission; the rest exists only while value tracking is on and only
// ever sharpens or withholds the certificate.
type absState struct {
	d      interval
	stored uint64  // must-assigned local slots (definite assignment)
	ret    bool    // current frame retained on every path reaching pc
	freed  regSet  // regions a frame of which may have been freed
	frec   regSet  // allocation sites a record of which may have been freed
	vals   []value // stack values, bottom first; nil = untracked
	locs   []value // flow-sensitive local values; nil/short slots = untracked
}

func (s absState) join(o absState) absState {
	return absState{
		d:      s.d.join(o.d),
		stored: s.stored & o.stored,
		ret:    s.ret && o.ret,
		freed:  s.freed.union(o.freed),
		frec:   s.frec.union(o.frec),
		vals:   joinVals(s.vals, o.vals),
		locs:   joinLocs(s.locs, o.locs),
	}
}

// deriv carries every frame-local fact (assigned locals, retain mark,
// freed sets, local values) into a successor state with depth d and an
// untracked stack. Every intra-frame propagation builds on it, so adding
// a frame-local fact to absState means adding it here, once.
func (s absState) deriv(d interval) absState {
	return absState{d: d, stored: s.stored, ret: s.ret, freed: s.freed, frec: s.frec, locs: s.locs}
}

func (s absState) equal(o absState) bool {
	if s.d != o.d || s.stored != o.stored || s.ret != o.ret || s.freed != o.freed || s.frec != o.frec {
		return false
	}
	if (s.vals == nil) != (o.vals == nil) || len(s.vals) != len(o.vals) {
		return false
	}
	for i := range s.vals {
		if s.vals[i] != o.vals[i] {
			return false
		}
	}
	return locsEqual(s.locs, o.locs)
}

// region is one procedure's code range [entry, end) as the linker laid it
// out; end is the next inline header in the segment (or the segment end).
type region struct {
	entry, end uint32
	name       string
	inst       *image.Instance
	fsi        int
}

type diagKey struct {
	pc     uint32
	reason Reason
}

type analyzer struct {
	p     *image.Program
	code  []byte
	insts []isa.Inst
	data  map[mem.Addr]mem.Word

	regions     []region
	regionOf    []int32 // per pc: region index or -1
	entryRegion map[uint32]int
	instByCB    map[uint32]*image.Instance
	boundary    []bool // canonical instruction boundaries per region

	// values: stage 1 tracks the value lattice. Cleared (with a full
	// rerun) the first time the run or the certificate scan discovers a
	// taint — a reachable operation that could invalidate value-derived
	// facts. The fallback run is exactly the old conservative analysis.
	values bool
	taint  bool

	state   []absState
	reached []bool
	work    []uint32
	queued  []bool

	// Per-region result summaries (join of RET states).
	sum      []interval // result-depth summary
	sumOK    []bool
	sumVals  [][]value  // result values (nil once arities disagree)
	sumValsN []bool     // sumVals meaningful (at least one RET folded)
	sumFreed []regSet   // regions the callee's subtree may free
	deps     [][]uint32 // call/desc-transfer sites awaiting the summary
	depSeen  map[uint64]bool
	maxHi    []int // per region: max hi over its reached pcs

	// Record allocation sites: each reachable AFB gets a stable site index
	// whose payload (the frame class's word count) bounds certified writes
	// through pointers carrying the site.
	recSiteOf   map[uint32]int
	sitePayload []int

	// Per-region resume pools: the depths (and freed masks) a frame of
	// the region can be resumed with at its XFERO suspension points.
	pool      []interval
	poolOK    []bool
	poolFreed []regSet
	xferSrc   []regSet   // regions with an XFERO site targeting this region
	xferSites [][]uint32 // XFERO pcs inside this region (requeued on pool growth)
	lrcSites  [][]uint32 // LRC pcs inside this region
	llSites   [][]uint32 // guarded local loads inside this region
	siteSeen  map[uint64]bool

	// Trap-handler model (values mode): armed is "a STRAP arming some
	// handler is reachable"; handlers is the region set of statically known
	// handler descriptors. The conservative fallback instead reruns with
	// trapsPossible once a run reaches any STRAP (sawStrap), exactly the
	// old two-pass interval analysis.
	armed         bool
	handlers      regSet
	trapSites     []uint32 // TRAPB/DIV/MOD pcs, requeued when the model grows
	trapSeen      map[uint32]bool
	sawStrap      bool
	trapsPossible bool
	// defFlow records pcs whose fixed stack effect looked like a definite
	// under/overflow mid-fixpoint (values mode). Joins move both interval
	// ends, so the judgment is non-monotone: certify re-checks each site
	// against the final state and only then emits the Error.
	defFlow map[uint32][2]int // pc -> {pops, pushes}

	callEntered []bool    // region can be entered by a static call or as a trap handler
	retainedAll []bool    // every reached RET of the region carries the retained mark
	retSeen     []bool    // region has a reached RET
	env         [][]value // per region, per local slot: join of stored values
	envInit     []uint64  // slots of env holding at least one stored value

	diags    []Diag
	seen     map[diagKey]bool
	certOK   bool
	heapOK   bool
	calls    []CallEdge
	callSeen map[CallEdge]bool

	// Stage-3 results (effects.go): per-region and whole-program write
	// sets, computed once over the final fixpoint.
	writes     []WriteSet
	progWrites WriteSet
}

// Program verifies a linked program and returns the structured report.
// It never fails hard: malformed images produce Error diagnostics, not
// panics, so a serving layer can always render the report.
func Program(p *image.Program) *Report {
	insts, _ := isa.Predecode(p.Code)
	a := &analyzer{
		p:           p,
		code:        p.Code,
		insts:       insts,
		data:        make(map[mem.Addr]mem.Word, len(p.Data)),
		entryRegion: map[uint32]int{},
		instByCB:    map[uint32]*image.Instance{},
	}
	for _, dw := range p.Data {
		a.data[dw.Addr] = dw.Val
	}
	a.buildRegions()
	a.buildBoundaries()
	a.values = len(a.regions) > 0 && len(a.regions) <= maxTrackedRegions
	for {
		a.reset()
		a.run()
		a.certify()
		if a.values && a.taint {
			// Something reachable invalidates the value-derived facts:
			// rerun with the conservative interval semantics only.
			a.values, a.taint = false, false
			continue
		}
		if !a.values && a.sawStrap && !a.trapsPossible {
			// Conservative mode reached a STRAP: rerun with in-machine trap
			// dispatch possible everywhere (the handler installed at any
			// point governs every TRAPB and division).
			a.trapsPossible = true
			continue
		}
		break
	}
	a.effects()
	return a.report()
}

func (a *analyzer) buildRegions() {
	ncode := uint32(len(a.code))
	for _, inst := range a.p.Instances {
		a.instByCB[inst.CodeBase] = inst
		segEnd := ncode
		for _, other := range a.p.Instances {
			if other.CodeBase > inst.CodeBase && other.CodeBase < segEnd {
				segEnd = other.CodeBase
			}
		}
		for i := range inst.Module.Procs {
			entry := inst.ProcEntryPC(i)
			if entry >= ncode {
				continue
			}
			end := segEnd
			for j := range inst.Module.Procs {
				if h := inst.ProcHeaderAddr(j); h > entry && h < end {
					end = h
				}
			}
			a.regions = append(a.regions, region{
				entry: entry, end: end,
				name: inst.Module.Name + "." + inst.Module.Procs[i].Name,
				inst: inst, fsi: inst.FSI[i],
			})
		}
	}
	a.regionOf = make([]int32, len(a.code))
	for i := range a.regionOf {
		a.regionOf[i] = -1
	}
	for r, reg := range a.regions {
		a.entryRegion[reg.entry] = r
		for pc := reg.entry; pc < reg.end && pc < ncode; pc++ {
			a.regionOf[pc] = int32(r)
		}
	}
}

// buildBoundaries marks the canonical instruction boundaries: the pcs a
// linear decode from each procedure entry visits. Jumping anywhere else is
// legal for the machine (the predecoded table is dense) but almost always
// a compiler or relocation bug, so it gets a Warn.
func (a *analyzer) buildBoundaries() {
	a.boundary = make([]bool, len(a.code))
	for _, reg := range a.regions {
		for pc := reg.entry; pc < reg.end; {
			in := &a.insts[pc]
			if !in.Valid() {
				break
			}
			a.boundary[pc] = true
			pc += uint32(in.Size)
		}
	}
}

func (a *analyzer) reset() {
	n := len(a.code)
	nr := len(a.regions)
	a.state = make([]absState, n)
	a.reached = make([]bool, n)
	a.work = a.work[:0]
	a.queued = make([]bool, n)
	a.sum = make([]interval, nr)
	a.sumOK = make([]bool, nr)
	a.sumVals = make([][]value, nr)
	a.sumValsN = make([]bool, nr)
	a.sumFreed = make([]regSet, nr)
	a.deps = make([][]uint32, nr)
	a.depSeen = map[uint64]bool{}
	a.maxHi = make([]int, nr)
	for i := range a.maxHi {
		a.maxHi[i] = -1
	}
	a.recSiteOf = map[uint32]int{}
	a.sitePayload = a.sitePayload[:0]
	a.pool = make([]interval, nr)
	a.poolOK = make([]bool, nr)
	a.poolFreed = make([]regSet, nr)
	a.xferSrc = make([]regSet, nr)
	a.xferSites = make([][]uint32, nr)
	a.lrcSites = make([][]uint32, nr)
	a.llSites = make([][]uint32, nr)
	a.siteSeen = map[uint64]bool{}
	a.armed = false
	a.handlers = regSet{}
	a.trapSites = a.trapSites[:0]
	a.trapSeen = map[uint32]bool{}
	a.sawStrap = false
	a.defFlow = map[uint32][2]int{}
	a.callEntered = make([]bool, nr)
	a.retainedAll = make([]bool, nr)
	for i := range a.retainedAll {
		a.retainedAll[i] = true
	}
	a.retSeen = make([]bool, nr)
	a.env = make([][]value, nr)
	a.envInit = make([]uint64, nr)
	a.diags = nil
	a.seen = map[diagKey]bool{}
	a.certOK = true
	a.heapOK = true
	a.calls = nil
	a.callSeen = map[CallEdge]bool{}

	// Roots: every linked procedure entry, at depth 0 — any of them can be
	// the target of a serving call, a coroutine creation or a trap handler
	// installation, and enterProc always clears the stack.
	for _, reg := range a.regions {
		a.joinInto(reg.entry, a.entryState(regSet{}))
	}
	// The program's start descriptor must itself resolve.
	if a.p.Entry != 0 {
		if !image.IsProc(a.p.Entry) {
			a.diag(0, LevelError, ReasonBadDescriptor,
				"entry context %04x is not a procedure descriptor", a.p.Entry)
		} else {
			a.resolveDescriptor(0, a.p.Entry, ReasonBadDescriptor, "entry ")
		}
	}
}

// entryState is the canonical procedure entry context: empty stack, no
// definitely-assigned locals (arguments arrive as frame garbage as far as
// the value lattice is concerned), carrying the caller's freed set.
// Record pointers never cross a call (RET summaries sanitize them), so the
// freed-site set starts empty.
func (a *analyzer) entryState(freed regSet) absState {
	s := absState{d: interval{0, 0}, freed: freed}
	if a.values {
		s.vals = []value{}
	}
	return s
}

func (a *analyzer) run() {
	for len(a.work) > 0 {
		pc := a.work[len(a.work)-1]
		a.work = a.work[:len(a.work)-1]
		a.queued[pc] = false
		a.step(pc, a.state[pc])
	}
}

func (a *analyzer) enqueue(pc uint32) {
	if !a.queued[pc] {
		a.queued[pc] = true
		a.work = append(a.work, pc)
	}
}

// joinInto merges s into pc's state, queueing pc when it grew.
func (a *analyzer) joinInto(pc uint32, s absState) {
	if int(pc) >= len(a.code) {
		return
	}
	if !a.reached[pc] {
		a.reached[pc] = true
		a.state[pc] = s
		a.enqueue(pc)
		return
	}
	if j := a.state[pc].join(s); !j.equal(a.state[pc]) {
		a.state[pc] = j
		a.enqueue(pc)
	}
}

// propagate flows s along an intra-procedural edge from → to (fall-through
// or jump), reporting a fall off the end of the code space and flows that
// cross a procedure boundary.
func (a *analyzer) propagate(from, to uint32, s absState) {
	if int(to) >= len(a.code) {
		a.diag(from, LevelError, ReasonFallOffEnd,
			"execution runs past the %d-byte code space", len(a.code))
		return
	}
	if rf, rt := a.regionOf[from], a.regionOf[to]; rf != rt {
		a.diagCert(from, ReasonCrossProcFlow,
			"control flows from %s into %s without a call", a.regionName(rf), a.regionName(rt))
	}
	a.joinInto(to, s)
}

func (a *analyzer) regionName(r int32) string {
	if r < 0 {
		return "unowned code"
	}
	return a.regions[r].name
}

func (a *analyzer) procName(pc uint32) string {
	if int(pc) < len(a.regionOf) {
		if r := a.regionOf[pc]; r >= 0 {
			return a.regions[r].name
		}
	}
	return a.p.ProcName(pc)
}

func (a *analyzer) diag(pc uint32, lvl Level, reason Reason, format string, args ...interface{}) {
	k := diagKey{pc, reason}
	if a.seen[k] {
		return
	}
	a.seen[k] = true
	a.diags = append(a.diags, Diag{
		PC: pc, Proc: a.procName(pc), Level: lvl, Reason: reason,
		Msg: fmt.Sprintf(format, args...),
	})
}

// diagCert emits a Warn that also withholds the stack-bounds certificate.
func (a *analyzer) diagCert(pc uint32, reason Reason, format string, args ...interface{}) {
	a.certOK = false
	k := diagKey{pc, reason}
	if a.seen[k] {
		return
	}
	a.seen[k] = true
	a.diags = append(a.diags, Diag{
		PC: pc, Proc: a.procName(pc), Level: LevelWarn, Reason: reason, Cert: true,
		Msg: fmt.Sprintf(format, args...),
	})
}

// diagHeap emits a Warn that withholds only the heap-effects certificate:
// the write lands outside run-allocated storage (or cannot be bounded),
// but the stack-bounds proof is untouched by it.
func (a *analyzer) diagHeap(pc uint32, reason Reason, format string, args ...interface{}) {
	a.heapOK = false
	k := diagKey{pc, reason}
	if a.seen[k] {
		return
	}
	a.seen[k] = true
	a.diags = append(a.diags, Diag{
		PC: pc, Proc: a.procName(pc), Level: LevelWarn, Reason: reason, Heap: true,
		Msg: fmt.Sprintf(format, args...),
	})
}

// setTaint abandons value tracking: the current run finishes (its
// admission diagnostics are discarded anyway) and Program reruns the
// whole analysis with the conservative semantics.
func (a *analyzer) setTaint() { a.taint = true }

func (a *analyzer) edge(from, callee uint32, kind EdgeKind) {
	e := CallEdge{FromPC: from, Callee: callee, Kind: kind, May: kind == EdgeMay}
	if !a.callSeen[e] {
		a.callSeen[e] = true
		a.calls = append(a.calls, e)
	}
}

func (a *analyzer) mayEdge(pc uint32) { a.edge(pc, 0, EdgeMay) }

// markCallEntered records that region r can be entered by a static call
// or trap dispatch: its retctx may then name a frame suspended inside a
// call, which the resume-pool model must not cover.
func (a *analyzer) markCallEntered(r int) {
	if r < 0 || r >= len(a.callEntered) || a.callEntered[r] {
		return
	}
	a.callEntered[r] = true
	for _, pc := range a.lrcSites[r] {
		a.enqueue(pc)
	}
}

// resolveDescriptor statically walks the §5.1 indirection chain of a
// packed procedure descriptor: GFT entry → global frame → code base →
// entry vector → frame-size index.
func (a *analyzer) resolveDescriptor(pc uint32, desc mem.Word, reason Reason, what string) (entry uint32, fsi int, ok bool) {
	gfi, ev := image.UnpackProc(desc)
	gfte, present := a.data[image.GFTBase+mem.Addr(gfi)]
	if !present {
		a.diag(pc, LevelError, reason,
			"%sdescriptor %04x: gfi %d has no GFT entry", what, desc, gfi)
		return 0, 0, false
	}
	gf, bias := image.UnpackGFTEntry(gfte)
	lo, okLo := a.data[gf]
	hi, okHi := a.data[gf+1]
	if !okLo || !okHi {
		a.diag(pc, LevelError, reason,
			"%sdescriptor %04x: global frame %04x holds no code base", what, desc, gf)
		return 0, 0, false
	}
	cb := uint32(lo) | uint32(hi)<<16
	evIdx := ev + bias
	if inst := a.instByCB[cb]; inst != nil && evIdx >= len(inst.EVOffsets) {
		a.diag(pc, LevelError, reason,
			"%sdescriptor %04x: entry %d past the %d-slot entry vector of %s",
			what, desc, evIdx, len(inst.EVOffsets), inst.Module.Name)
		return 0, 0, false
	}
	return a.resolveEntry(pc, cb, evIdx, reason, what)
}

// resolveEntry reads entry-vector slot evIdx of the segment at cb the way
// the machine's LOCALCALL path does, validating every read.
func (a *analyzer) resolveEntry(pc uint32, cb uint32, evIdx int, reason Reason, what string) (entry uint32, fsi int, ok bool) {
	evAddr := int64(cb) + int64(2*evIdx)
	if evAddr+1 >= int64(len(a.code)) || evAddr < 0 {
		a.diag(pc, LevelError, reason,
			"%sentry-vector slot %d at %06x reads outside the code space", what, evIdx, evAddr)
		return 0, 0, false
	}
	evOff := uint32(a.code[evAddr]) | uint32(a.code[evAddr+1])<<8
	fsiAddr := int64(cb) + int64(evOff)
	if fsiAddr >= int64(len(a.code)) {
		a.diag(pc, LevelError, reason,
			"%sentry %d: header at %06x lies outside the code space", what, evIdx, fsiAddr)
		return 0, 0, false
	}
	fsi = int(a.code[fsiAddr])
	entry = uint32(fsiAddr) + 1
	if int64(entry) >= int64(len(a.code)) || !a.insts[entry].Valid() {
		a.diag(pc, LevelError, reason,
			"%sentry %d: first instruction at %06x does not decode", what, evIdx, entry)
		return 0, 0, false
	}
	if fsi >= len(a.p.FrameSizes) {
		a.diag(pc, LevelError, ReasonBadFrameSize,
			"%sentry %d: frame class %d outside the %d-class table", what, evIdx, fsi, len(a.p.FrameSizes))
		return 0, 0, false
	}
	return entry, fsi, true
}

// resolveDescQuiet resolves a descriptor word to a region index without
// emitting any diagnostic: the value analysis uses it to classify COCREATE
// operands and XFERO/STRAP targets, where an unresolvable word merely
// degrades the value to untracked (the machine errors cleanly at runtime).
func (a *analyzer) resolveDescQuiet(desc mem.Word) (r int, ok bool) {
	if !image.IsProc(desc) {
		return 0, false
	}
	gfi, ev := image.UnpackProc(desc)
	gfte, present := a.data[image.GFTBase+mem.Addr(gfi)]
	if !present {
		return 0, false
	}
	gf, bias := image.UnpackGFTEntry(gfte)
	lo, okLo := a.data[gf]
	hi, okHi := a.data[gf+1]
	if !okLo || !okHi {
		return 0, false
	}
	cb := uint32(lo) | uint32(hi)<<16
	evIdx := ev + bias
	evAddr := int64(cb) + int64(2*evIdx)
	if evAddr+1 >= int64(len(a.code)) || evAddr < 0 {
		return 0, false
	}
	evOff := uint32(a.code[evAddr]) | uint32(a.code[evAddr+1])<<8
	fsiAddr := int64(cb) + int64(evOff)
	if fsiAddr+1 >= int64(len(a.code)) {
		return 0, false
	}
	r, isEntry := a.entryRegion[uint32(fsiAddr)+1]
	if !isEntry || r >= maxTrackedRegions {
		return 0, false
	}
	return r, true
}

func (a *analyzer) report() *Report {
	r := &Report{
		Diags:  a.diags,
		Calls:  a.calls,
		Depths: make(map[uint32][2]int),
	}
	for pc := range a.code {
		if a.reached[pc] {
			r.Depths[uint32(pc)] = [2]int{a.state[pc].d.lo, a.state[pc].d.hi}
		}
	}
	for i, reg := range a.regions {
		pi := ProcInfo{Name: reg.name, Entry: reg.entry, MaxDepth: a.maxHi[i],
			ResultLo: -1, ResultHi: -1, ResumeLo: -1, ResumeHi: -1}
		if a.sumOK[i] {
			pi.ResultLo, pi.ResultHi = a.sum[i].lo, a.sum[i].hi
		}
		if i < maxTrackedRegions {
			pi.Called = a.callEntered[i] && !a.handlers.has(i)
			pi.TrapHandler = a.handlers.has(i)
			pi.XferTarget = !a.xferSrc[i].empty()
		} else {
			pi.Called = a.callEntered[i]
		}
		if a.poolOK[i] {
			pi.ResumeLo, pi.ResumeHi = a.pool[i].lo, a.pool[i].hi
		}
		pi.Retained = a.retainedAll[i] && a.retSeen[i]
		if i < len(a.writes) {
			pi.Writes = a.writes[i]
		}
		r.Procs = append(r.Procs, pi)
	}
	r.CertStackBounds = a.certOK && r.Admitted()
	r.Writes = a.progWrites
	r.WriteFree = !a.progWrites.Globals && !a.progWrites.Records && !a.progWrites.Unknown
	r.CertHeapEffects = a.heapOK && !a.progWrites.Unknown && r.Admitted()
	r.GlobalWords = 0
	if a.progWrites.Globals {
		for _, inst := range a.p.Instances {
			r.GlobalWords += inst.Module.NumGlobals
		}
	}
	switch {
	case a.progWrites.Unknown:
		r.MaxDirtyWords = -1
	default:
		r.MaxDirtyWords = r.GlobalWords
	}
	return r
}
