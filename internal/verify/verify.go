// Package verify is the link-time bytecode verifier: an abstract
// interpreter over the predecoded instruction stream of a linked program.
// Where the execution engine discovers a bad jump target, a stack fault or
// an unresolvable descriptor only when execution reaches it — after a
// server has already spent step budget — the verifier walks every
// statically reachable pc once, at link/load time, and computes:
//
//   - per-pc evaluation-stack depth bounds (an interval [lo, hi]);
//   - jump and branch target validity (and whether a target lands inside
//     another instruction's operand bytes);
//   - procedure-descriptor resolvability: gfi within the GFT, entry index
//     within the instance's entry vector, under both linkage policies
//     (link-vector external calls and §6 early-bound direct calls);
//   - frame-size-index sanity for DCALL/SDCALL inline headers, entry
//     vectors and AFB;
//   - fall-off-the-end and reachable-invalid-slot detection (invalid
//     slots that are never reachable — entry vectors, inline headers,
//     padding — are deliberately NOT reported);
//   - a conservative call graph with well-bracketed call/return
//     structure; coroutine transfers (XFERO, COCREATE) and traps are
//     modeled as may-edges with unknown resumption stacks.
//
// The analysis is a worklist fixpoint over depth intervals. Procedure
// entries are the roots, each at depth 0 (the engine's enterProc delivers
// the argument record into frame locals and clears the stack). Calls are
// modeled interprocedurally: the depth after a call site is the callee's
// result-depth summary — the join of the depth intervals at its reachable
// RETs — recomputed to fixpoint, which handles recursion without flagging
// it. Transfers the verifier cannot trace (XFERO targets, trap-handler
// results) conservatively resume with the full interval [0, EvalStackDepth].
//
// Diagnostics come in two grades. Error marks a pc where reaching it
// definitely fails or corrupts the machine — the program is rejected
// (Report.Admitted() == false). Warn marks what cannot be proven safe; the
// program is admitted, but any certificate-blocking Warn withholds
// CertStackBounds, the certificate that lets the engine skip its
// per-instruction stack bounds checks (see the soundness sketch in
// DESIGN.md).
package verify

import (
	"fmt"

	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/mem"
)

// maxDepth is the evaluation-stack capacity the analysis bounds against.
const maxDepth = isa.EvalStackDepth

// interval is an abstract stack depth: every concrete depth reaching the
// pc lies in [lo, hi].
type interval struct{ lo, hi int }

// top is the unknown depth: anything the machine accepts.
var top = interval{0, maxDepth}

func (a interval) join(b interval) interval {
	if b.lo < a.lo {
		a.lo = b.lo
	}
	if b.hi > a.hi {
		a.hi = b.hi
	}
	return a
}

// region is one procedure's code range [entry, end) as the linker laid it
// out; end is the next inline header in the segment (or the segment end).
type region struct {
	entry, end uint32
	name       string
	inst       *image.Instance
	fsi        int
}

type diagKey struct {
	pc     uint32
	reason Reason
}

type analyzer struct {
	p     *image.Program
	code  []byte
	insts []isa.Inst
	data  map[mem.Addr]mem.Word

	regions     []region
	regionOf    []int32 // per pc: region index or -1
	entryRegion map[uint32]int
	instByCB    map[uint32]*image.Instance
	boundary    []bool // canonical instruction boundaries per region

	// trapsPossible: a STRAP is reachable, so DIV/MOD/TRAPB may transfer
	// to an in-machine handler whose result depth is unknown. Determined
	// by iterating the whole analysis (reachability of STRAP depends on
	// the analysis, which depends on this flag; it only flips false→true,
	// so at most two passes run).
	trapsPossible bool
	sawStrap      bool

	state   []interval
	reached []bool
	work    []uint32
	queued  []bool

	sum     []interval // per region: result-depth summary (join of RET depths)
	sumOK   []bool
	deps    [][]uint32 // per region: call-site pcs awaiting its summary
	depSeen map[uint64]bool
	maxHi   []int // per region: max hi over its reached pcs

	diags    []Diag
	seen     map[diagKey]bool
	certOK   bool
	calls    []CallEdge
	callSeen map[CallEdge]bool
}

// Program verifies a linked program and returns the structured report.
// It never fails hard: malformed images produce Error diagnostics, not
// panics, so a serving layer can always render the report.
func Program(p *image.Program) *Report {
	insts, _ := isa.Predecode(p.Code)
	a := &analyzer{
		p:           p,
		code:        p.Code,
		insts:       insts,
		data:        make(map[mem.Addr]mem.Word, len(p.Data)),
		entryRegion: map[uint32]int{},
		instByCB:    map[uint32]*image.Instance{},
	}
	for _, dw := range p.Data {
		a.data[dw.Addr] = dw.Val
	}
	a.buildRegions()
	a.buildBoundaries()
	for {
		a.reset()
		a.run()
		if !a.sawStrap || a.trapsPossible {
			break
		}
		a.trapsPossible = true
	}
	return a.report()
}

func (a *analyzer) buildRegions() {
	ncode := uint32(len(a.code))
	for _, inst := range a.p.Instances {
		a.instByCB[inst.CodeBase] = inst
		segEnd := ncode
		for _, other := range a.p.Instances {
			if other.CodeBase > inst.CodeBase && other.CodeBase < segEnd {
				segEnd = other.CodeBase
			}
		}
		for i := range inst.Module.Procs {
			entry := inst.ProcEntryPC(i)
			if entry >= ncode {
				continue
			}
			end := segEnd
			for j := range inst.Module.Procs {
				if h := inst.ProcHeaderAddr(j); h > entry && h < end {
					end = h
				}
			}
			a.regions = append(a.regions, region{
				entry: entry, end: end,
				name: inst.Module.Name + "." + inst.Module.Procs[i].Name,
				inst: inst, fsi: inst.FSI[i],
			})
		}
	}
	a.regionOf = make([]int32, len(a.code))
	for i := range a.regionOf {
		a.regionOf[i] = -1
	}
	for r, reg := range a.regions {
		a.entryRegion[reg.entry] = r
		for pc := reg.entry; pc < reg.end && pc < ncode; pc++ {
			a.regionOf[pc] = int32(r)
		}
	}
}

// buildBoundaries marks the canonical instruction boundaries: the pcs a
// linear decode from each procedure entry visits. Jumping anywhere else is
// legal for the machine (the predecoded table is dense) but almost always
// a compiler or relocation bug, so it gets a Warn.
func (a *analyzer) buildBoundaries() {
	a.boundary = make([]bool, len(a.code))
	for _, reg := range a.regions {
		for pc := reg.entry; pc < reg.end; {
			in := &a.insts[pc]
			if !in.Valid() {
				break
			}
			a.boundary[pc] = true
			pc += uint32(in.Size)
		}
	}
}

func (a *analyzer) reset() {
	n := len(a.code)
	a.state = make([]interval, n)
	a.reached = make([]bool, n)
	a.work = a.work[:0]
	a.queued = make([]bool, n)
	a.sum = make([]interval, len(a.regions))
	a.sumOK = make([]bool, len(a.regions))
	a.deps = make([][]uint32, len(a.regions))
	a.depSeen = map[uint64]bool{}
	a.maxHi = make([]int, len(a.regions))
	for i := range a.maxHi {
		a.maxHi[i] = -1
	}
	a.diags = nil
	a.seen = map[diagKey]bool{}
	a.certOK = true
	a.calls = nil
	a.callSeen = map[CallEdge]bool{}
	a.sawStrap = false

	// Roots: every linked procedure entry, at depth 0 — any of them can be
	// the target of a serving call, a coroutine creation or a trap handler
	// installation, and enterProc always clears the stack.
	for _, reg := range a.regions {
		a.joinInto(reg.entry, interval{0, 0})
	}
	// The program's start descriptor must itself resolve.
	if a.p.Entry != 0 {
		if !image.IsProc(a.p.Entry) {
			a.diag(0, LevelError, ReasonBadDescriptor,
				"entry context %04x is not a procedure descriptor", a.p.Entry)
		} else {
			a.resolveDescriptor(0, a.p.Entry, ReasonBadDescriptor, "entry ")
		}
	}
}

func (a *analyzer) run() {
	for len(a.work) > 0 {
		pc := a.work[len(a.work)-1]
		a.work = a.work[:len(a.work)-1]
		a.queued[pc] = false
		a.step(pc, a.state[pc])
	}
}

func (a *analyzer) enqueue(pc uint32) {
	if !a.queued[pc] {
		a.queued[pc] = true
		a.work = append(a.work, pc)
	}
}

// joinInto merges d into pc's state, queueing pc when it grew.
func (a *analyzer) joinInto(pc uint32, d interval) {
	if int(pc) >= len(a.code) {
		return
	}
	if !a.reached[pc] {
		a.reached[pc] = true
		a.state[pc] = d
		a.enqueue(pc)
		return
	}
	if j := a.state[pc].join(d); j != a.state[pc] {
		a.state[pc] = j
		a.enqueue(pc)
	}
}

// propagate flows d along an intra-procedural edge from → to (fall-through
// or jump), reporting a fall off the end of the code space and flows that
// cross a procedure boundary.
func (a *analyzer) propagate(from, to uint32, d interval) {
	if int(to) >= len(a.code) {
		a.diag(from, LevelError, ReasonFallOffEnd,
			"execution runs past the %d-byte code space", len(a.code))
		return
	}
	if rf, rt := a.regionOf[from], a.regionOf[to]; rf != rt {
		a.diagCert(from, ReasonCrossProcFlow,
			"control flows from %s into %s without a call", a.regionName(rf), a.regionName(rt))
	}
	a.joinInto(to, d)
}

func (a *analyzer) regionName(r int32) string {
	if r < 0 {
		return "unowned code"
	}
	return a.regions[r].name
}

func (a *analyzer) procName(pc uint32) string {
	if int(pc) < len(a.regionOf) {
		if r := a.regionOf[pc]; r >= 0 {
			return a.regions[r].name
		}
	}
	return a.p.ProcName(pc)
}

func (a *analyzer) diag(pc uint32, lvl Level, reason Reason, format string, args ...interface{}) {
	k := diagKey{pc, reason}
	if a.seen[k] {
		return
	}
	a.seen[k] = true
	a.diags = append(a.diags, Diag{
		PC: pc, Proc: a.procName(pc), Level: lvl, Reason: reason,
		Msg: fmt.Sprintf(format, args...),
	})
}

// diagCert emits a Warn that also withholds the stack-bounds certificate.
func (a *analyzer) diagCert(pc uint32, reason Reason, format string, args ...interface{}) {
	a.certOK = false
	a.diag(pc, LevelWarn, reason, format, args...)
}

func (a *analyzer) edge(from, callee uint32, may bool) {
	e := CallEdge{FromPC: from, Callee: callee, May: may}
	if !a.callSeen[e] {
		a.callSeen[e] = true
		a.calls = append(a.calls, e)
	}
}

func (a *analyzer) mayEdge(pc uint32) { a.edge(pc, 0, true) }

// applyEffect applies a fixed stack effect at pc: definite faults are
// Errors (the path ends), possible faults are certificate-blocking Warns
// (the surviving depths continue).
func (a *analyzer) applyEffect(pc uint32, d interval, pops, pushes int) (interval, bool) {
	if d.hi < pops {
		a.diag(pc, LevelError, ReasonStackUnderflow,
			"%s pops %d with at most %d on the stack", a.insts[pc].Op, pops, d.hi)
		return interval{}, false
	}
	if d.lo < pops {
		a.diagCert(pc, ReasonMaybeUnderflow,
			"%s pops %d with as few as %d on the stack", a.insts[pc].Op, pops, d.lo)
	}
	after := interval{d.lo - pops, d.hi - pops}
	if after.lo < 0 {
		after.lo = 0
	}
	if after.lo+pushes > maxDepth {
		a.diag(pc, LevelError, ReasonStackOverflow,
			"%s pushes to depth %d past the %d-word stack", a.insts[pc].Op, after.lo+pushes, maxDepth)
		return interval{}, false
	}
	if after.hi+pushes > maxDepth {
		a.diagCert(pc, ReasonMaybeOverflow,
			"%s can push to depth %d past the %d-word stack", a.insts[pc].Op, after.hi+pushes, maxDepth)
		after.hi = maxDepth - pushes
	}
	after.lo += pushes
	after.hi += pushes
	return after, true
}

func (a *analyzer) step(pc uint32, d interval) {
	in := &a.insts[pc]
	if !in.Valid() {
		reason := ReasonTruncated
		if isa.Op(a.code[pc]) >= isa.NumOps {
			reason = ReasonBadOpcode
		}
		a.diag(pc, LevelError, reason, "%v", in.Err(a.code, int(pc)))
		return
	}
	if r := a.regionOf[pc]; r >= 0 && d.hi > a.maxHi[r] {
		a.maxHi[r] = d.hi
	}
	op := in.Op
	next := pc + uint32(in.Size)

	switch {
	case op == isa.HALT:
		return

	case op == isa.RET:
		a.doRet(pc, d)
		return

	case op.IsJump():
		a.doJump(pc, in, d, next)
		return

	case op.IsCall():
		a.doCall(pc, in, d, next)
		return

	case op == isa.XFERO:
		// The popped context word is arbitrary; the transfer may reach any
		// resumable frame. When something later transfers back here, the
		// resumption arrives with that transfer's stack — unknown.
		if _, ok := a.applyEffect(pc, d, 1, 0); !ok {
			return
		}
		a.diagCert(pc, ReasonDynamicTransfer, "XFERO target and resumption stack are unknown")
		a.mayEdge(pc)
		a.propagate(pc, next, top)
		return

	case op == isa.TRAPB:
		a.mayEdge(pc)
		if a.trapsPossible {
			// An in-machine handler's RETURN restores the trapper's
			// operands beneath the handler's results: at least d.lo words,
			// at most a full stack.
			a.propagate(pc, next, interval{d.lo, maxDepth})
			return
		}
		if after, ok := a.applyEffect(pc, d, 0, 1); ok {
			a.propagate(pc, next, after)
		}
		return

	case op == isa.DIV || op == isa.MOD:
		after, ok := a.applyEffect(pc, d, 2, 1)
		if !ok {
			return
		}
		if a.trapsPossible {
			// Division by zero can transfer to a handler; its result depth
			// is unknown (handler results replace the quotient).
			a.propagate(pc, next, interval{after.lo - 1, maxDepth})
			return
		}
		a.propagate(pc, next, after)
		return

	case op == isa.STRAP:
		a.sawStrap = true
		a.diagCert(pc, ReasonDynamicTransfer, "STRAP installs a dynamic trap handler")
		a.mayEdge(pc)
		if after, ok := a.applyEffect(pc, d, 1, 0); ok {
			a.propagate(pc, next, after)
		}
		return

	case op == isa.COCREATE:
		a.diagCert(pc, ReasonDynamicTransfer, "COCREATE constructs a coroutine context resumed outside call/return structure")
		a.mayEdge(pc)
		if after, ok := a.applyEffect(pc, d, 1, 1); ok {
			a.propagate(pc, next, after)
		}
		return

	case op == isa.FREE || op == isa.FFREE:
		a.diagCert(pc, ReasonDynamicTransfer, "%s releases a context the verifier cannot track", op)
		if after, ok := a.applyEffect(pc, d, 1, 0); ok {
			a.propagate(pc, next, after)
		}
		return

	case op == isa.STIND || op == isa.WFB:
		a.diagCert(pc, ReasonDynamicTransfer, "%s stores through an arbitrary pointer and can reach frame or table linkage", op)
		info := isa.InfoOf(op)
		if after, ok := a.applyEffect(pc, d, int(info.Pops), int(info.Pushes)); ok {
			a.propagate(pc, next, after)
		}
		return
	}

	// Remaining opcodes have a fixed effect from the metadata table, plus
	// per-opcode operand sanity checks.
	info := isa.InfoOf(op)
	if info.Pops < 0 || info.Pushes < 0 {
		// Defensive: a variable effect not handled above.
		a.diagCert(pc, ReasonDynamicTransfer, "%s has a state-dependent stack effect", op)
		a.propagate(pc, next, top)
		return
	}
	switch {
	case op >= isa.LL0 && op <= isa.LAB:
		a.checkLocal(pc, in)
	case op >= isa.LG0 && op <= isa.SGB:
		a.checkGlobal(pc, in)
	case op == isa.AFB:
		if int(in.Arg) >= len(a.p.FrameSizes) {
			a.diag(pc, LevelError, ReasonBadFrameSize,
				"AFB class %d outside the %d-class frame-size table", in.Arg, len(a.p.FrameSizes))
			return
		}
	}
	if after, ok := a.applyEffect(pc, d, int(info.Pops), int(info.Pushes)); ok {
		a.propagate(pc, next, after)
	}
}

// checkLocal bounds local-variable accesses against the procedure's frame
// class. A load past the frame reads a neighbouring heap word (garbage but
// harmless); a store there corrupts the neighbour, so it blocks the
// certificate.
func (a *analyzer) checkLocal(pc uint32, in *isa.Inst) {
	r := a.regionOf[pc]
	if r < 0 || a.regions[r].fsi >= len(a.p.FrameSizes) {
		return
	}
	payload := a.p.FrameSizes[a.regions[r].fsi]
	off := image.FrameHeaderWords + int(in.Arg)
	if off < payload {
		return
	}
	op := in.Op
	store := (op >= isa.SL0 && op <= isa.SL7) || op == isa.SLB
	if store {
		a.diagCert(pc, ReasonLocalRange,
			"%s local %d: word %d of a %d-word frame (class %d)", op, in.Arg, off, payload, a.regions[r].fsi)
	} else {
		a.diag(pc, LevelWarn, ReasonLocalRange,
			"%s local %d: word %d of a %d-word frame (class %d)", op, in.Arg, off, payload, a.regions[r].fsi)
	}
}

// checkGlobal bounds global accesses against the module's declared global
// count; a store past it lands in the neighbouring link vector or frame.
func (a *analyzer) checkGlobal(pc uint32, in *isa.Inst) {
	r := a.regionOf[pc]
	if r < 0 {
		return
	}
	ng := a.regions[r].inst.Module.NumGlobals
	if int(in.Arg) < ng {
		return
	}
	if in.Op == isa.SGB {
		a.diagCert(pc, ReasonGlobalRange,
			"SGB global %d of %d in module %s", in.Arg, ng, a.regions[r].inst.Module.Name)
	} else {
		a.diag(pc, LevelWarn, ReasonGlobalRange,
			"%s global %d of %d in module %s", in.Op, in.Arg, ng, a.regions[r].inst.Module.Name)
	}
}

func (a *analyzer) doJump(pc uint32, in *isa.Inst, d interval, next uint32) {
	info := isa.InfoOf(in.Op)
	after, ok := a.applyEffect(pc, d, int(info.Pops), 0)
	if !ok {
		return
	}
	t := in.Target
	if int64(t) >= int64(len(a.code)) || !a.insts[t].Valid() {
		a.diag(pc, LevelError, ReasonBadJumpTarget,
			"%s to %06x: no instruction decodes there", in.Op, t)
	} else {
		if !a.boundary[t] {
			a.diag(pc, LevelWarn, ReasonJumpIntoOperands,
				"%s lands at %06x, inside another instruction's operand bytes", in.Op, t)
		}
		a.propagate(pc, t, after)
	}
	if in.Op != isa.JB && in.Op != isa.JW {
		a.propagate(pc, next, after) // conditional: may fall through
	}
}

// doRet folds the depth at a RET into its procedure's result summary and
// requeues every call site waiting on it.
func (a *analyzer) doRet(pc uint32, d interval) {
	r := a.regionOf[pc]
	if r < 0 {
		a.diagCert(pc, ReasonCrossProcFlow, "RET outside any procedure; its result depth cannot be attributed")
		return
	}
	if !a.sumOK[r] {
		a.sumOK[r] = true
		a.sum[r] = d
	} else if j := a.sum[r].join(d); j != a.sum[r] {
		a.sum[r] = j
	} else {
		return
	}
	for _, site := range a.deps[r] {
		a.enqueue(site)
	}
}

func (a *analyzer) doCall(pc uint32, in *isa.Inst, d interval, next uint32) {
	op := in.Op
	r := a.regionOf[pc]
	var entry uint32
	var fsi int
	var ok bool

	switch {
	case op.IsExternalCall():
		if r < 0 {
			a.diagCert(pc, ReasonIrregularCall, "external call outside any procedure")
			a.mayEdge(pc)
			a.propagate(pc, next, top)
			return
		}
		inst := a.regions[r].inst
		slot := int(in.Arg)
		ctx, present := a.data[inst.GF-1-mem.Addr(slot)]
		if !present || ctx == 0 {
			// The machine XFERs to NIL: the computation halts there.
			a.diagCert(pc, ReasonUnresolvedLink,
				"link vector slot %d of %s is empty", slot, inst.Module.Name)
			a.mayEdge(pc)
			return
		}
		if !image.IsProc(ctx) {
			a.diagCert(pc, ReasonUnresolvedLink,
				"link vector slot %d of %s holds %04x, not a procedure descriptor", slot, inst.Module.Name, ctx)
			a.mayEdge(pc)
			a.propagate(pc, next, top)
			return
		}
		entry, fsi, ok = a.resolveDescriptor(pc, ctx, ReasonBadDescriptor, "")

	case op.IsLocalCall():
		if r < 0 {
			a.diagCert(pc, ReasonIrregularCall, "local call outside any procedure")
			a.mayEdge(pc)
			a.propagate(pc, next, top)
			return
		}
		inst := a.regions[r].inst
		if ev := int(in.Arg); ev >= len(inst.EVOffsets) {
			a.diag(pc, LevelError, ReasonBadEntryVector,
				"%s entry %d past the %d-slot entry vector of %s", op, ev, len(inst.EVOffsets), inst.Module.Name)
			return
		}
		entry, fsi, ok = a.resolveEntry(pc, inst.CodeBase, int(in.Arg), ReasonBadEntryVector, "")

	default: // DCALL / SDCALL
		if !in.CallOK {
			a.diag(pc, LevelError, ReasonBadCallHeader,
				"%s header at %06x lies outside the %d-byte code space", op, in.Target, len(a.code))
			return
		}
		entry = in.Target + isa.HeaderSkip
		fsi = int(in.FSI)
		if int64(entry) >= int64(len(a.code)) || !a.insts[entry].Valid() {
			a.diag(pc, LevelError, ReasonBadCallHeader,
				"%s entry %06x does not decode", op, entry)
			return
		}
		if fsi >= len(a.p.FrameSizes) {
			a.diag(pc, LevelError, ReasonBadFrameSize,
				"%s header class %d outside the %d-class frame-size table", op, fsi, len(a.p.FrameSizes))
			return
		}
		ok = true
	}
	if !ok {
		return
	}
	a.finishCall(pc, next, d, entry, fsi)
}

// finishCall wires a resolved call site: the arg-record fit check, the
// call edge, and the interprocedural fall-through (the callee's result
// summary becomes the caller's depth after the call).
func (a *analyzer) finishCall(pc, next uint32, d interval, entry uint32, fsi int) {
	a.edge(pc, entry, false)
	if payload := a.p.FrameSizes[fsi]; image.FrameHeaderWords+d.hi > payload {
		a.diagCert(pc, ReasonArgOverrun,
			"call can carry %d stack words into a %d-word frame (class %d)", d.hi, payload, fsi)
	}
	cr, isEntry := a.entryRegion[entry]
	if !isEntry {
		// The target decodes but is not a procedure entry the linker laid
		// out: its RETs cannot be attributed, so its result depth is
		// unknown.
		a.diagCert(pc, ReasonIrregularCall,
			"call target %06x is not a linked procedure entry", entry)
		a.joinInto(entry, interval{0, 0})
		a.propagate(pc, next, top)
		return
	}
	key := uint64(cr)<<32 | uint64(pc)
	if !a.depSeen[key] {
		a.depSeen[key] = true
		a.deps[cr] = append(a.deps[cr], pc)
	}
	if a.sumOK[cr] {
		a.propagate(pc, next, a.sum[cr])
	}
	// Summary still unknown: the callee provably never returns (yet); the
	// fall-through stays unreached until a RET appears.
}

// resolveDescriptor statically walks the §5.1 indirection chain of a
// packed procedure descriptor: GFT entry → global frame → code base →
// entry vector → frame-size index.
func (a *analyzer) resolveDescriptor(pc uint32, desc mem.Word, reason Reason, what string) (entry uint32, fsi int, ok bool) {
	gfi, ev := image.UnpackProc(desc)
	gfte, present := a.data[image.GFTBase+mem.Addr(gfi)]
	if !present {
		a.diag(pc, LevelError, reason,
			"%sdescriptor %04x: gfi %d has no GFT entry", what, desc, gfi)
		return 0, 0, false
	}
	gf, bias := image.UnpackGFTEntry(gfte)
	lo, okLo := a.data[gf]
	hi, okHi := a.data[gf+1]
	if !okLo || !okHi {
		a.diag(pc, LevelError, reason,
			"%sdescriptor %04x: global frame %04x holds no code base", what, desc, gf)
		return 0, 0, false
	}
	cb := uint32(lo) | uint32(hi)<<16
	evIdx := ev + bias
	if inst := a.instByCB[cb]; inst != nil && evIdx >= len(inst.EVOffsets) {
		a.diag(pc, LevelError, reason,
			"%sdescriptor %04x: entry %d past the %d-slot entry vector of %s",
			what, desc, evIdx, len(inst.EVOffsets), inst.Module.Name)
		return 0, 0, false
	}
	return a.resolveEntry(pc, cb, evIdx, reason, what)
}

// resolveEntry reads entry-vector slot evIdx of the segment at cb the way
// the machine's LOCALCALL path does, validating every read.
func (a *analyzer) resolveEntry(pc uint32, cb uint32, evIdx int, reason Reason, what string) (entry uint32, fsi int, ok bool) {
	evAddr := int64(cb) + int64(2*evIdx)
	if evAddr+1 >= int64(len(a.code)) || evAddr < 0 {
		a.diag(pc, LevelError, reason,
			"%sentry-vector slot %d at %06x reads outside the code space", what, evIdx, evAddr)
		return 0, 0, false
	}
	evOff := uint32(a.code[evAddr]) | uint32(a.code[evAddr+1])<<8
	fsiAddr := int64(cb) + int64(evOff)
	if fsiAddr >= int64(len(a.code)) {
		a.diag(pc, LevelError, reason,
			"%sentry %d: header at %06x lies outside the code space", what, evIdx, fsiAddr)
		return 0, 0, false
	}
	fsi = int(a.code[fsiAddr])
	entry = uint32(fsiAddr) + 1
	if int64(entry) >= int64(len(a.code)) || !a.insts[entry].Valid() {
		a.diag(pc, LevelError, reason,
			"%sentry %d: first instruction at %06x does not decode", what, evIdx, entry)
		return 0, 0, false
	}
	if fsi >= len(a.p.FrameSizes) {
		a.diag(pc, LevelError, ReasonBadFrameSize,
			"%sentry %d: frame class %d outside the %d-class table", what, evIdx, fsi, len(a.p.FrameSizes))
		return 0, 0, false
	}
	return entry, fsi, true
}

func (a *analyzer) report() *Report {
	r := &Report{
		Diags:  a.diags,
		Calls:  a.calls,
		Depths: make(map[uint32][2]int),
	}
	for pc := range a.code {
		if a.reached[pc] {
			r.Depths[uint32(pc)] = [2]int{a.state[pc].lo, a.state[pc].hi}
		}
	}
	for i, reg := range a.regions {
		pi := ProcInfo{Name: reg.name, Entry: reg.entry, MaxDepth: a.maxHi[i], ResultLo: -1, ResultHi: -1}
		if a.sumOK[i] {
			pi.ResultLo, pi.ResultHi = a.sum[i].lo, a.sum[i].hi
		}
		r.Procs = append(r.Procs, pi)
	}
	r.CertStackBounds = a.certOK && r.Admitted()
	return r
}
