package verify

import (
	"fmt"
	"sort"
	"strings"
)

// Level grades a diagnostic.
type Level uint8

// Diagnostic levels. An Error marks a pc where execution, if it reaches
// the pc, definitely fails or definitely corrupts machine state — the
// verifier rejects the program. A Warn marks something the verifier cannot
// prove safe (a possible stack fault, a dynamic transfer it cannot trace);
// the program is still admitted, but a cert-blocking Warn denies the
// stack-bounds certificate.
const (
	LevelWarn Level = iota
	LevelError
)

// String names the level.
func (l Level) String() string {
	if l == LevelError {
		return "error"
	}
	return "warn"
}

// Reason is a stable machine-readable code for a diagnostic.
type Reason string

// Reason codes.
const (
	// ReasonBadOpcode: a reachable pc holds an undefined opcode byte.
	ReasonBadOpcode Reason = "bad-opcode"
	// ReasonTruncated: a reachable instruction's operand bytes run past
	// the end of the code space.
	ReasonTruncated Reason = "truncated"
	// ReasonFallOffEnd: execution can fall past the last code byte.
	ReasonFallOffEnd Reason = "fall-off-end"
	// ReasonBadJumpTarget: a jump's target is outside the code space or
	// lands on a byte where no instruction decodes.
	ReasonBadJumpTarget Reason = "bad-jump-target"
	// ReasonJumpIntoOperands: a jump target decodes, but is not on the
	// instruction boundary stream of its procedure — it lands inside
	// another instruction's operand bytes and executes a shadow stream.
	ReasonJumpIntoOperands Reason = "jump-into-operands"
	// ReasonStackUnderflow / ReasonStackOverflow: the instruction's stack
	// effect fails on every path that reaches it.
	ReasonStackUnderflow Reason = "stack-underflow"
	ReasonStackOverflow  Reason = "stack-overflow"
	// ReasonMaybeUnderflow / ReasonMaybeOverflow: the effect fails on some
	// abstract path; the verifier cannot certify the stack bounds.
	ReasonMaybeUnderflow Reason = "maybe-underflow"
	ReasonMaybeOverflow  Reason = "maybe-overflow"
	// ReasonBadDescriptor: a procedure descriptor does not resolve —
	// its gfi has no GFT entry, or its entry index points past the entry
	// vector of the instance it names.
	ReasonBadDescriptor Reason = "bad-descriptor"
	// ReasonBadEntryVector: a local call's entry-vector slot reads outside
	// the code space or yields an entry that does not decode.
	ReasonBadEntryVector Reason = "bad-entry-vector"
	// ReasonBadCallHeader: a direct call's inline header lies outside the
	// code space, or the entry behind it does not decode.
	ReasonBadCallHeader Reason = "bad-call-header"
	// ReasonBadFrameSize: a frame-size index is not a class of the
	// program's frame-size table.
	ReasonBadFrameSize Reason = "bad-frame-size"
	// ReasonGlobalRange: a global access indexes past the module's
	// globals (a store there corrupts the neighbouring link vector).
	ReasonGlobalRange Reason = "global-out-of-range"
	// ReasonLocalRange: a local access indexes past the procedure's frame
	// class (a store there corrupts the neighbouring heap block).
	ReasonLocalRange Reason = "local-out-of-range"
	// ReasonArgOverrun: a call site can carry more stack words than the
	// callee's frame class holds below its size.
	ReasonArgOverrun Reason = "arg-overrun"
	// ReasonDynamicTransfer: a reachable XFERO or STRAP whose target the
	// summary engine could not pin to a tracked context — the transfer is a
	// may-edge, so the certificate is withheld. (COCREATE with a constant
	// descriptor, transfers between tracked coroutines and STRAP of a known
	// handler no longer raise this; they are certified via resume pools and
	// handler summaries.)
	ReasonDynamicTransfer Reason = "dynamic-transfer"
	// ReasonUnsafeFree: a reachable FREE or FFREE of a context the engine
	// cannot prove dead-safe — an unknown word, a possibly live caller or
	// transferrer frame, a possible double free, or a frame whose procedure
	// does not retain on every return.
	ReasonUnsafeFree Reason = "unsafe-free"
	// ReasonHeapStore: a reachable STIND or WFB — a raw store that can
	// rewrite frame words, saved pcs or table linkage, invalidating every
	// static fact downstream.
	ReasonHeapStore Reason = "heap-store"
	// ReasonUnresolvedLink: an external call's link-vector slot is not a
	// statically known procedure descriptor.
	ReasonUnresolvedLink Reason = "unresolved-link"
	// ReasonCrossProcFlow: a jump or fall-through crosses a procedure
	// boundary, so return depths cannot be attributed to one procedure.
	ReasonCrossProcFlow Reason = "cross-proc-flow"
	// ReasonIrregularCall: a call target is not a procedure entry the
	// linker laid out, so its result depth is unknown.
	ReasonIrregularCall Reason = "irregular-call"
	// ReasonHeapEscape: a write provably lands outside run-allocated
	// storage (module globals, the boot image): the run mutates state that
	// survives into the next session unless Reset restores it. Blocks the
	// heap-effects certificate only.
	ReasonHeapEscape Reason = "heap-escape"
	// ReasonHeapUnknownTarget: a write whose target the effects analysis
	// cannot place (an untracked pointer store, an out-of-range local or
	// global index): the write set is unbounded. Blocks the heap-effects
	// certificate only.
	ReasonHeapUnknownTarget Reason = "heap-unknown-target"
)

// Diag is one per-pc diagnostic.
type Diag struct {
	PC     uint32
	Proc   string // "Module.proc" owning the pc, when known
	Level  Level
	Reason Reason
	Msg    string
	// Cert marks a Warn that withholds the stack-bounds certificate: the
	// reason codes of these diagnostics explain an Admitted-but-uncertified
	// verdict.
	Cert bool
	// Heap marks a Warn that withholds the heap-effects certificate only:
	// the write set escapes run-allocated storage or cannot be bounded.
	// Heap diagnostics never affect admission or the stack-bounds
	// certificate.
	Heap bool
}

// String renders the diagnostic one per line, fpcdis-style.
func (d Diag) String() string {
	where := d.Proc
	if where == "" {
		where = "?"
	}
	return fmt.Sprintf("%s: pc %06x (%s): %s: %s", d.Level, d.PC, where, d.Reason, d.Msg)
}

// ProcInfo is the per-procedure summary the analysis computed.
type ProcInfo struct {
	Name  string
	Entry uint32
	// MaxDepth is the largest possible evaluation-stack depth at any pc of
	// the procedure (upper bound); -1 when the body was never reached.
	MaxDepth int
	// ResultLo/ResultHi bound the stack depth at the procedure's returns —
	// its result arity interval. Both are -1 when no RET was reached (the
	// procedure provably never returns normally).
	ResultLo, ResultHi int
	// Entry contexts the summary engine attributed to the procedure.
	// Called: reachable as an ordinary callee. TrapHandler: installed by a
	// reachable STRAP with a constant descriptor. XferTarget: a frame of
	// this procedure can be entered or resumed by a coroutine transfer.
	Called, TrapHandler, XferTarget bool
	// ResumeLo/ResumeHi bound the cross-depths (stack words carried) of the
	// transfers that can resume a suspended frame of this procedure — its
	// resume pool. Both are -1 when no tracked transfer targets it.
	ResumeLo, ResumeHi int
	// Retained reports that every reached return of the procedure carries
	// the RETAIN mark, so its frame outlives the call (§4 keepers).
	Retained bool
	// Writes is the procedure's heap write-set summary, including
	// everything its callees, transfer targets and armed trap handlers can
	// write on its behalf.
	Writes WriteSet
}

// WriteSet is a heap write-set summary: which storage classes a procedure
// (or the whole program) can write during a run. Frame-arena traffic —
// call frames, AV free-list links, records granted by AFB and released
// before certification cares — is the Frames/Records bits; Globals marks
// writes into module global space (state the boot image owns); Unknown
// marks a write the analysis could not place, which makes every bound
// vacuous.
type WriteSet struct {
	// Frames: frame-arena linkage traffic (call frames, AV links, saved
	// state). Every call or return sets it; it never blocks a certificate.
	Frames bool
	// Globals: stores into module global words (SGB in range).
	Globals bool
	// Records: stores into run-allocated records the verifier tracked.
	Records bool
	// Unknown: a write whose target could not be placed. All bounds are
	// off.
	Unknown bool
}

// union folds another write set into w.
func (w WriteSet) union(o WriteSet) WriteSet {
	return WriteSet{
		Frames:  w.Frames || o.Frames,
		Globals: w.Globals || o.Globals,
		Records: w.Records || o.Records,
		Unknown: w.Unknown || o.Unknown,
	}
}

// String renders the write set as a compact class list.
func (w WriteSet) String() string {
	var parts []string
	if w.Frames {
		parts = append(parts, "frames")
	}
	if w.Records {
		parts = append(parts, "records")
	}
	if w.Globals {
		parts = append(parts, "globals")
	}
	if w.Unknown {
		parts = append(parts, "unknown")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// EdgeKind classifies a call-graph edge.
type EdgeKind uint8

// Edge kinds. EdgeCall is an ordinary call with a statically resolved
// callee; EdgeXfer a coroutine transfer whose target region the summary
// engine pinned down; EdgeTrap a trap dispatch to a known handler;
// EdgeMay an edge whose target is unknown.
const (
	EdgeCall EdgeKind = iota
	EdgeXfer
	EdgeTrap
	EdgeMay
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeXfer:
		return "xfer"
	case EdgeTrap:
		return "trap"
	}
	return "may"
}

// CallEdge is one edge of the call graph. May mirrors Kind == EdgeMay:
// the callee is unknown, so Callee is the zero value.
type CallEdge struct {
	FromPC uint32
	Callee uint32 // callee entry pc (0 and May=true for unknown targets)
	Kind   EdgeKind
	May    bool
}

// Report is the verifier's structured result.
type Report struct {
	Diags []Diag
	Procs []ProcInfo
	Calls []CallEdge
	// Depths holds the per-pc abstract stack-depth interval [lo, hi] of
	// every reachable pc.
	Depths map[uint32][2]int
	// CertStackBounds is the stack-bounds certificate: every reachable
	// instruction provably keeps the evaluation stack inside
	// [0, isa.EvalStackDepth], and nothing reachable can corrupt the
	// linkage the proof depends on — a machine running this image may skip
	// the per-instruction stack-bounds checks.
	CertStackBounds bool
	// CertHeapEffects is the heap-effects certificate: every write the
	// program can perform provably lands in storage the run itself
	// allocated (frame arena, tracked records) — nothing escapes into the
	// boot image's state. A Reset after a certified run has a statically
	// known repair bound.
	CertHeapEffects bool
	// Writes is the program-level write-set summary: the union over every
	// reachable procedure and every pc outside procedure regions.
	Writes WriteSet
	// WriteFree reports that the run writes nothing the boot image owns:
	// no globals, no tracked records, no unknown targets — only the frame
	// arena the allocator and dirty tracking already account for. Reset
	// may elide the memory restore when the dirty window confirms it.
	WriteFree bool
	// GlobalWords is the total global-word footprint of the program's
	// module instances when Writes.Globals is set (0 otherwise): the
	// static cap on boot-image words a certified run can touch.
	GlobalWords int
	// MaxDirtyWords bounds the words a certified run can dirty in the
	// globals window [layout.GlobalsBase, HeapBase): -1 when the write set
	// is Unknown, else GlobalWords. Frame and record traffic lands in the
	// AV heads below the window and the frame arena above it, so the bound
	// is exactly the escaping footprint.
	MaxDirtyWords int
}

// Admitted reports whether the program passed verification: no Error-level
// diagnostic. An admitted program may still carry Warns (and be denied the
// certificate).
func (r *Report) Admitted() bool {
	for _, d := range r.Diags {
		if d.Level == LevelError {
			return false
		}
	}
	return true
}

// Errors returns the Error-level diagnostics.
func (r *Report) Errors() []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.Level == LevelError {
			out = append(out, d)
		}
	}
	return out
}

// Warnings returns the Warn-level diagnostics.
func (r *Report) Warnings() []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.Level == LevelWarn {
			out = append(out, d)
		}
	}
	return out
}

// CallFusable reports whether the call site at pc has a statically pinned
// callee: at least one EdgeCall from pc and no may-edge. Transfer and trap
// edges neither qualify nor disqualify — a trap edge the summary engine
// attributed to a neighbouring TRAPB never lands on a call pc, and an
// unarmed TRAPB contributes no edge at all. The loader consults this when
// fusing superinstructions, so only call sites the analysis resolved
// become FPushCall group tails. A linear scan — it runs once per call
// site at image-load time, never on the execution path.
func (r *Report) CallFusable(pc uint32) bool {
	ok := false
	for _, e := range r.Calls {
		if e.FromPC == pc {
			if e.Kind == EdgeMay {
				return false
			}
			if e.Kind == EdgeCall {
				ok = true
			}
		}
	}
	return ok
}

// CertReasons returns the sorted distinct reason codes of the
// certificate-blocking diagnostics: why an admitted program was denied
// CertStackBounds. Empty for certified (or rejected) programs.
func (r *Report) CertReasons() []string {
	seen := map[Reason]bool{}
	var out []string
	for _, d := range r.Diags {
		if d.Cert && !seen[d.Reason] {
			seen[d.Reason] = true
			out = append(out, string(d.Reason))
		}
	}
	sort.Strings(out)
	return out
}

// HeapCertReasons returns the sorted distinct reason codes of the
// heap-blocking diagnostics: why an admitted program was denied
// CertHeapEffects. Empty for heap-certified (or rejected) programs.
func (r *Report) HeapCertReasons() []string {
	seen := map[Reason]bool{}
	var out []string
	for _, d := range r.Diags {
		if d.Heap && !seen[d.Reason] {
			seen[d.Reason] = true
			out = append(out, string(d.Reason))
		}
	}
	sort.Strings(out)
	return out
}

// PrimaryCertReason returns the reason code of the certificate-blocking
// diagnostic at the lowest pc — the headline answer to "why is this
// program not certified" — or "" when nothing blocks the certificate.
func (r *Report) PrimaryCertReason() string {
	best := -1
	for i, d := range r.Diags {
		if d.Cert && (best < 0 || d.PC < r.Diags[best].PC) {
			best = i
		}
	}
	if best < 0 {
		return ""
	}
	return string(r.Diags[best].Reason)
}

// DepthAt reports the abstract stack-depth bounds at pc; ok is false when
// the verifier proved pc unreachable.
func (r *Report) DepthAt(pc uint32) (lo, hi int, ok bool) {
	d, ok := r.Depths[pc]
	return d[0], d[1], ok
}

// String renders the report for logs and CLI output: the verdict, every
// diagnostic, and the per-procedure depth summary.
func (r *Report) String() string {
	var b strings.Builder
	verdict := "admitted"
	if !r.Admitted() {
		verdict = "rejected"
	} else {
		var certs []string
		if r.CertStackBounds {
			certs = append(certs, "stack bounds")
		}
		if r.CertHeapEffects {
			certs = append(certs, "heap effects")
		}
		if len(certs) > 0 {
			verdict = "admitted, " + strings.Join(certs, " + ") + " certified"
		}
	}
	fmt.Fprintf(&b, "verify: %s (%d diagnostics)\n", verdict, len(r.Diags))
	if r.Admitted() {
		dirty := "unbounded"
		if r.MaxDirtyWords >= 0 {
			dirty = fmt.Sprintf("<=%d words", r.MaxDirtyWords)
		}
		extra := ""
		if r.WriteFree {
			extra = ", write-free"
		}
		fmt.Fprintf(&b, "  writes: %s (dirty globals %s%s)\n", r.Writes, dirty, extra)
	}
	diags := append([]Diag(nil), r.Diags...)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Level != diags[j].Level {
			return diags[i].Level > diags[j].Level // errors first
		}
		return diags[i].PC < diags[j].PC
	})
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	for _, p := range r.Procs {
		if p.MaxDepth < 0 {
			fmt.Fprintf(&b, "  proc %s @%06x: unreached\n", p.Name, p.Entry)
			continue
		}
		res := "never returns"
		if p.ResultLo >= 0 {
			res = fmt.Sprintf("results [%d,%d]", p.ResultLo, p.ResultHi)
		}
		var ctx []string
		if p.Called {
			ctx = append(ctx, "called")
		}
		if p.TrapHandler {
			ctx = append(ctx, "trap handler")
		}
		if p.XferTarget {
			ctx = append(ctx, "xfer target")
		}
		if p.ResumeLo >= 0 {
			ctx = append(ctx, fmt.Sprintf("resume [%d,%d]", p.ResumeLo, p.ResumeHi))
		}
		if p.Retained {
			ctx = append(ctx, "retained")
		}
		ctx = append(ctx, "writes "+p.Writes.String())
		line := fmt.Sprintf("  proc %s @%06x: max stack %d, %s", p.Name, p.Entry, p.MaxDepth, res)
		if len(ctx) > 0 {
			line += " (" + strings.Join(ctx, ", ") + ")"
		}
		fmt.Fprintf(&b, "%s\n", line)
	}
	return b.String()
}
