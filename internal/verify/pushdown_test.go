package verify_test

import (
	"testing"

	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/verify"
	"repro/internal/workload"
)

func procInfo(r *verify.Report, name string) (verify.ProcInfo, bool) {
	for _, p := range r.Procs {
		if p.Name == name {
			return p, true
		}
	}
	return verify.ProcInfo{}, false
}

// findOp walks the predecoded entry procedure and returns the pc of the
// n-th occurrence of op.
func findOp(t *testing.T, prog *image.Program, op isa.Op, n int) uint32 {
	t.Helper()
	insts, _ := isa.Predecode(prog.Code)
	pc := prog.Instances[0].ProcEntryPC(0)
	for pc < uint32(len(insts)) && insts[pc].Valid() {
		if insts[pc].Op == op {
			if n == 0 {
				return pc
			}
			n--
		}
		pc += uint32(insts[pc].Size)
	}
	t.Fatalf("opcode %s (occurrence %d) not found from entry", op, n)
	return 0
}

// A coroutine pair — create, bidirectional transfers, free — must now earn
// the stack-bounds certificate: the resume pools pin every cross-depth.
func TestCoroutineCertified(t *testing.T) {
	w := &workload.Program{
		Name: "co-cert",
		Sources: map[string]string{"com": `
module com;
proc prod(start) {
  var who = retctx();
  var v = start;
  while (1) {
    transfer(who, v & 0x3FFF);
    v = v + 3;
  }
}
proc main() {
  var co = cocreate(prod);
  var a = transfer(co, 1);
  var b = transfer(co, 0);
  free(co);
  return (a + b) & 0x7FFF;
}
`},
		Module: "com", Proc: "main",
	}
	for _, early := range []bool{false, true} {
		r := verify.Program(buildWorkload(t, w, early))
		if !r.Admitted() {
			t.Fatalf("early=%v: rejected:\n%s", early, r)
		}
		if !r.CertStackBounds {
			t.Fatalf("early=%v: coroutine program denied certificate:\n%s", early, r)
		}
		p, ok := procInfo(r, "com.prod")
		if !ok {
			t.Fatalf("early=%v: no com.prod in report", early)
		}
		if !p.XferTarget {
			t.Errorf("early=%v: com.prod not marked as a transfer target", early)
		}
		if p.ResumeLo < 0 || p.ResumeHi < p.ResumeLo {
			t.Errorf("early=%v: com.prod resume pool [%d,%d] not populated", early, p.ResumeLo, p.ResumeHi)
		}
		var sawXfer bool
		for _, e := range r.Calls {
			if e.Kind == verify.EdgeXfer {
				sawXfer = true
			}
			if e.Kind == verify.EdgeMay {
				t.Errorf("early=%v: unexpected may-edge at pc %06x", early, e.FromPC)
			}
		}
		if !sawXfer {
			t.Errorf("early=%v: no EdgeXfer in call graph", early)
		}
	}
}

// A program that arms a trap handler and takes both explicit and
// divide-by-zero traps is certifiable: the handler's result arity bounds
// every restore depth.
func TestTrapHandlerCertified(t *testing.T) {
	w := &workload.Program{
		Name: "trap-cert",
		Sources: map[string]string{"trapm": `
module trapm;
proc th(code) {
  return (code * 3 + 1) & 0xFFF;
}
proc main(n) {
  settrap(th);
  var acc = trap(7);
  acc = (acc + (100 / (n & 3))) & 0x7FFF;
  return acc;
}
`},
		Module: "trapm", Proc: "main",
	}
	for _, early := range []bool{false, true} {
		r := verify.Program(buildWorkload(t, w, early))
		if !r.Admitted() {
			t.Fatalf("early=%v: rejected:\n%s", early, r)
		}
		if !r.CertStackBounds {
			t.Fatalf("early=%v: trap program denied certificate:\n%s", early, r)
		}
		p, ok := procInfo(r, "trapm.th")
		if !ok {
			t.Fatalf("early=%v: no trapm.th in report", early)
		}
		if !p.TrapHandler {
			t.Errorf("early=%v: trapm.th not marked as a trap handler", early)
		}
		var sawTrapEdge bool
		for _, e := range r.Calls {
			if e.Kind == verify.EdgeTrap {
				sawTrapEdge = true
			}
		}
		if !sawTrapEdge {
			t.Errorf("early=%v: no EdgeTrap in call graph", early)
		}
	}
}

// A keeper that retains its frame and hands its context to the caller, who
// frees it later, is certifiable: the summary proves every return path of
// the callee is retained, so the FREE targets a live, reclaimable frame.
func TestRetainedKeeperCertified(t *testing.T) {
	w := &workload.Program{
		Name: "keep-cert",
		Sources: map[string]string{"keep": `
module keep;
proc keeper(x) {
  var t = (x * 2 + 1) & 0xFFF;
  retain();
  return myctx(), t;
}
proc main() {
  var kc, kv;
  kc, kv = keeper(21);
  free(kc);
  return kv;
}
`},
		Module: "keep", Proc: "main",
	}
	for _, early := range []bool{false, true} {
		r := verify.Program(buildWorkload(t, w, early))
		if !r.Admitted() {
			t.Fatalf("early=%v: rejected:\n%s", early, r)
		}
		if !r.CertStackBounds {
			t.Fatalf("early=%v: retained keeper denied certificate:\n%s", early, r)
		}
		p, ok := procInfo(r, "keep.keeper")
		if !ok {
			t.Fatalf("early=%v: no keep.keeper in report", early)
		}
		if !p.Retained {
			t.Errorf("early=%v: keep.keeper not marked retained", early)
		}
	}
}

// Dropping the retain() makes the same shape unsound — the caller would
// free an already-reclaimed frame — so the free must cost the certificate
// with the unsafe-free reason, while the program stays admitted.
func TestUnretainedKeeperUncertified(t *testing.T) {
	w := &workload.Program{
		Name: "keep-bad",
		Sources: map[string]string{"keep": `
module keep;
proc keeper(x) {
  var t = (x * 2 + 1) & 0xFFF;
  return myctx(), t;
}
proc main() {
  var kc, kv;
  kc, kv = keeper(21);
  free(kc);
  return kv;
}
`},
		Module: "keep", Proc: "main",
	}
	r := verify.Program(buildWorkload(t, w, false))
	if !r.Admitted() {
		t.Fatalf("rejected:\n%s", r)
	}
	if r.CertStackBounds {
		t.Fatalf("unretained keeper free wrongly certified:\n%s", r)
	}
	if !hasReason(r.Diags, verify.ReasonUnsafeFree) {
		t.Errorf("missing %s diagnostic:\n%s", verify.ReasonUnsafeFree, r)
	}
}

// A statically-resolved XFERO to a procedure descriptor behaves as a call
// (§3): the target's returns resume the transferrer with its results, and
// the summary engine certifies the chain.
func TestXferDescriptorChainCertified(t *testing.T) {
	var a image.Asm
	a.EmitLoadLocalDesc(1)
	a.Emit(isa.XFERO)
	a.Emit(isa.POP)
	a.Emit(isa.HALT)
	var b image.Asm
	b.Emit(isa.LI3)
	b.Emit(isa.RET)
	m := &image.Module{Name: "x", Procs: []*image.Proc{
		{Name: "main", Body: a.Fragment()},
		{Name: "t", NumResults: 1, Body: b.Fragment()},
	}}
	prog := linkOne(t, m, "main")
	r := verify.Program(prog)
	if !r.Admitted() {
		t.Fatalf("rejected:\n%s", r)
	}
	if !r.CertStackBounds {
		t.Fatalf("descriptor XFERO chain denied certificate:\n%s", r)
	}
	xferPC := findOp(t, prog, isa.XFERO, 0)
	var sawEdge bool
	for _, e := range r.Calls {
		if e.FromPC == xferPC {
			if e.Kind != verify.EdgeXfer {
				t.Errorf("edge at XFERO pc has kind %s, want %s", e.Kind, verify.EdgeXfer)
			}
			sawEdge = true
		}
	}
	if !sawEdge {
		t.Errorf("no call-graph edge at the XFERO pc %06x:\n%s", xferPC, r)
	}
}

// coMismatch builds a coroutine pair whose two resume depths differ: the
// producer is started empty (cross-depth 0) but later resumed with two
// carried words, so its post-transfer POP may underflow.
func TestResumeDepthMismatchUncertified(t *testing.T) {
	var a image.Asm // main
	a.EmitLoadLocalDesc(1)
	a.Emit(isa.COCREATE)
	a.Emit(isa.SL0)
	a.Emit(isa.LL0)
	a.Emit(isa.XFERO) // start embryo, cross-depth 0
	a.Emit(isa.LL0)
	a.Emit(isa.XFERO) // resume at depth 3: cross-depth 2
	a.Emit(isa.HALT)
	var b image.Asm // prod
	b.Emit(isa.LRC)
	b.Emit(isa.SL0)
	b.Emit(isa.LI5)
	b.Emit(isa.LI5)
	b.Emit(isa.LL0)
	b.Emit(isa.XFERO) // transfer two words back, cross-depth 2
	b.Emit(isa.POP)   // resume depth is [0,2]: may underflow
	b.Emit(isa.HALT)
	m := &image.Module{Name: "mm", Procs: []*image.Proc{
		{Name: "main", NumLocals: 1, Body: a.Fragment()},
		{Name: "prod", NumLocals: 4, Body: b.Fragment()},
	}}
	r := verify.Program(linkOne(t, m, "main"))
	if !r.Admitted() {
		t.Fatalf("rejected:\n%s", r)
	}
	if r.CertStackBounds {
		t.Fatalf("mismatched resume depths wrongly certified:\n%s", r)
	}
	if !hasReason(r.Diags, verify.ReasonMaybeUnderflow) {
		t.Errorf("missing %s diagnostic:\n%s", verify.ReasonMaybeUnderflow, r)
	}
}

// A transfer that carries twelve words into a frame that then pushes two
// more crosses the 13-word line: admitted (the checked machine catches it)
// but uncertified with maybe-overflow.
func TestXferDeepCarryUncertified(t *testing.T) {
	var a image.Asm // main
	a.EmitLoadLocalDesc(1)
	a.Emit(isa.COCREATE)
	a.Emit(isa.SL0)
	a.Emit(isa.LL0)
	a.Emit(isa.XFERO) // start embryo, cross-depth 0
	for i := 0; i < 12; i++ {
		a.Emit(isa.LI1)
	}
	a.Emit(isa.LL0)
	a.Emit(isa.XFERO) // resume with twelve carried words
	a.Emit(isa.HALT)
	var b image.Asm // prod
	b.Emit(isa.LRC)
	b.Emit(isa.SL0)
	b.Emit(isa.LL0)
	b.Emit(isa.XFERO) // hand control back, cross-depth 0
	b.Emit(isa.LI1)   // resume depth is [0,12]: two pushes may overflow
	b.Emit(isa.LI1)
	b.Emit(isa.HALT)
	m := &image.Module{Name: "md", Procs: []*image.Proc{
		{Name: "main", NumLocals: 1, Body: a.Fragment()},
		{Name: "prod", NumLocals: 12, Body: b.Fragment()},
	}}
	r := verify.Program(linkOne(t, m, "main"))
	if !r.Admitted() {
		t.Fatalf("rejected:\n%s", r)
	}
	if r.CertStackBounds {
		t.Fatalf("deep-carry transfer wrongly certified:\n%s", r)
	}
	if !hasReason(r.Diags, verify.ReasonMaybeOverflow) {
		t.Errorf("missing %s diagnostic:\n%s", verify.ReasonMaybeOverflow, r)
	}
}

// A re-entrant handler that traps again and returns many results can push
// a deep trapper past the stack on restore: admitted, uncertified with
// maybe-overflow, and the trap edges are typed EdgeTrap (never fusable).
func TestTrapRestoreOverflowUncertified(t *testing.T) {
	var a image.Asm // main
	a.EmitLoadLocalDesc(1)
	a.Emit(isa.STRAP)
	a.Emit(isa.LI1)
	a.Emit(isa.LI1)
	a.Emit(isa.TRAPB, 5) // restore depth 2 + [11,13] crosses 13
	a.Emit(isa.HALT)
	var b image.Asm // handler: traps again, returns eleven words
	b.Emit(isa.TRAPB, 9)
	for i := 0; i < 10; i++ {
		b.Emit(isa.LI1)
	}
	b.Emit(isa.RET)
	m := &image.Module{Name: "rt", Procs: []*image.Proc{
		{Name: "main", Body: a.Fragment()},
		{Name: "handler", NumArgs: 1, NumLocals: 1, NumResults: 11, Body: b.Fragment()},
	}}
	prog := linkOne(t, m, "main")
	r := verify.Program(prog)
	if !r.Admitted() {
		t.Fatalf("rejected:\n%s", r)
	}
	if r.CertStackBounds {
		t.Fatalf("re-entrant trap restore wrongly certified:\n%s", r)
	}
	if !hasReason(r.Diags, verify.ReasonMaybeOverflow) {
		t.Errorf("missing %s diagnostic:\n%s", verify.ReasonMaybeOverflow, r)
	}
	p, ok := procInfo(r, "rt.handler")
	if !ok {
		t.Fatalf("no rt.handler in report")
	}
	if !p.TrapHandler {
		t.Errorf("rt.handler not marked as a trap handler")
	}
	trapPC := findOp(t, prog, isa.TRAPB, 0)
	var sawTrapEdge bool
	for _, e := range r.Calls {
		if e.FromPC == trapPC {
			if e.Kind != verify.EdgeTrap {
				t.Errorf("edge at armed TRAPB has kind %s, want %s", e.Kind, verify.EdgeTrap)
			}
			sawTrapEdge = true
		}
	}
	if !sawTrapEdge {
		t.Errorf("no EdgeTrap at armed TRAPB pc %06x:\n%s", trapPC, r)
	}
	if r.CallFusable(trapPC) {
		t.Errorf("armed TRAPB at %06x reported fusable", trapPC)
	}
}

// Recursion whose every level returns one more word than the last grows
// the result stack without bound: the summary widens to the stack limit
// and the program is admitted but uncertified with maybe-overflow.
func TestNetPushRecursionUncertified(t *testing.T) {
	var a image.Asm // main
	a.Emit(isa.LI3)
	a.EmitCallLocal(1)
	a.Emit(isa.HALT)
	var b image.Asm // r(n): n==0 -> 1 word; else r(n-1) plus one more
	base := b.NewLabel()
	b.Emit(isa.LL0)
	b.EmitJump(isa.JZB, base)
	b.Emit(isa.LL0)
	b.Emit(isa.LI1)
	b.Emit(isa.SUB)
	b.EmitCallLocal(1)
	b.Emit(isa.LI1)
	b.Emit(isa.RET)
	b.Bind(base)
	b.Emit(isa.LI1)
	b.Emit(isa.RET)
	m := &image.Module{Name: "np", Procs: []*image.Proc{
		{Name: "main", Body: a.Fragment()},
		{Name: "r", NumArgs: 1, NumLocals: 1, Body: b.Fragment()},
	}}
	r := verify.Program(linkOne(t, m, "main"))
	if !r.Admitted() {
		t.Fatalf("rejected:\n%s", r)
	}
	if r.CertStackBounds {
		t.Fatalf("net-push recursion wrongly certified:\n%s", r)
	}
	if !hasReason(r.Diags, verify.ReasonMaybeOverflow) {
		t.Errorf("missing %s diagnostic:\n%s", verify.ReasonMaybeOverflow, r)
	}
	if got := r.PrimaryCertReason(); got != string(verify.ReasonMaybeOverflow) {
		t.Errorf("PrimaryCertReason = %q, want %q", got, verify.ReasonMaybeOverflow)
	}
	reasons := r.CertReasons()
	if len(reasons) != 1 || reasons[0] != string(verify.ReasonMaybeOverflow) {
		t.Errorf("CertReasons = %v, want exactly [%s]", reasons, verify.ReasonMaybeOverflow)
	}
}

// An unarmed TRAPB contributes no call-graph edge and cannot poison the
// fusability of neighbouring call sites; a resolved local call stays an
// EdgeCall and fusable. Regression for the may-edge dedupe.
func TestUnarmedTrapbEdgesAndFusion(t *testing.T) {
	var a image.Asm // main
	a.Emit(isa.LI1)
	a.Emit(isa.TRAPB, 3) // unarmed: terminal or a marker push, never a transfer
	a.Emit(isa.POP)
	a.Emit(isa.POP)
	a.EmitCallLocal(1)
	a.Emit(isa.POP)
	a.Emit(isa.HALT)
	var b image.Asm // q
	b.Emit(isa.LI1)
	b.Emit(isa.RET)
	m := &image.Module{Name: "uf", Procs: []*image.Proc{
		{Name: "main", Body: a.Fragment()},
		{Name: "q", NumResults: 1, Body: b.Fragment()},
	}}
	prog := linkOne(t, m, "main")
	r := verify.Program(prog)
	if !r.Admitted() {
		t.Fatalf("rejected:\n%s", r)
	}
	if !r.CertStackBounds {
		t.Fatalf("unarmed TRAPB cost the certificate:\n%s", r)
	}
	trapPC := findOp(t, prog, isa.TRAPB, 0)
	callPC := findOp(t, prog, isa.LFC1, 0) // the linker picks the fast form for slot 1
	for _, e := range r.Calls {
		if e.FromPC == trapPC {
			t.Errorf("unarmed TRAPB at %06x grew a call-graph edge (kind %s)", trapPC, e.Kind)
		}
		if e.FromPC == callPC && e.Kind != verify.EdgeCall {
			t.Errorf("local call at %06x has kind %s, want %s", callPC, e.Kind, verify.EdgeCall)
		}
	}
	if !r.CallFusable(callPC) {
		t.Errorf("resolved local call at %06x not fusable", callPC)
	}
	if r.CallFusable(trapPC) {
		t.Errorf("TRAPB at %06x reported fusable", trapPC)
	}
}
