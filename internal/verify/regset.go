package verify

import "math/bits"

// maxTrackedRegions bounds the region and allocation-site index spaces of
// the value lattice. regSet lifted it from 64 (one uint64) to 256, so
// programs with up to 256 procedures keep value tracking instead of
// falling back to the conservative interval semantics.
const maxTrackedRegions = 256

// regSet is a fixed 256-bit set of region (or record allocation-site)
// indices. It is comparable with ==, which keeps value and absState
// comparable — joins and fixpoint equality tests stay cheap.
type regSet struct{ w [4]uint64 }

// rs1 returns the singleton set {i}.
func rs1(i int) regSet {
	var s regSet
	s.w[i>>6] = 1 << (uint(i) & 63)
	return s
}

func (s regSet) empty() bool { return s.w[0]|s.w[1]|s.w[2]|s.w[3] == 0 }

func (s regSet) has(i int) bool { return s.w[i>>6]>>(uint(i)&63)&1 == 1 }

func (s regSet) add(i int) regSet {
	s.w[i>>6] |= 1 << (uint(i) & 63)
	return s
}

func (s regSet) union(o regSet) regSet {
	for i := range s.w {
		s.w[i] |= o.w[i]
	}
	return s
}

func (s regSet) intersects(o regSet) bool {
	return s.w[0]&o.w[0]|s.w[1]&o.w[1]|s.w[2]&o.w[2]|s.w[3]&o.w[3] != 0
}

// forEach calls f with each member in ascending order.
func (s regSet) forEach(f func(int)) {
	for wi, w := range s.w {
		for ; w != 0; w &= w - 1 {
			f(wi<<6 + bits.TrailingZeros64(w))
		}
	}
}
