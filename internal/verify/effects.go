package verify

import (
	"repro/internal/image"
	"repro/internal/isa"
)

// Stage 3 of the verifier: the heap-effects analysis. It runs once over
// the final stage-1 fixpoint (values-clean or conservative) and computes,
// per procedure and for the whole program, a write-set summary: which
// storage classes the code can write during a run. The classes come from
// the per-opcode heap-effect column (isa.Info.Heap); placement — whose
// storage a write lands in — comes from the operand checks the summary
// engine already performed:
//
//   - Frame-arena traffic (call frames, AV links, records, saved state)
//     is storage the run itself allocates and the dirty tracking already
//     accounts for. It never blocks a certificate.
//   - In-range SGB writes module global words: state the boot image owns.
//     The run escapes into the next session unless Reset repairs it, so
//     the write blocks CertHeapEffects (ReasonHeapEscape) — but its
//     footprint is statically bounded by the module's global count.
//   - Anything the analysis cannot place — an untracked pointer store, an
//     out-of-range local or global index, a transfer to an unknown target
//     — makes the write set Unknown (ReasonHeapUnknownTarget): every
//     bound is vacuous and Reset must assume the worst.
//
// Per-procedure sets then close transitively over the call graph: a
// procedure writes whatever its callees, pinned transfer targets and
// armed trap handlers write on its behalf; a may-edge makes the caller
// Unknown. The program-level set is the union over every linked procedure
// (any entry can serve a request) plus reachable unowned code.
func (a *analyzer) effects() {
	nr := len(a.regions)
	a.writes = make([]WriteSet, nr)
	a.progWrites = WriteSet{}

	for pc := 0; pc < len(a.code); pc++ {
		if !a.reached[pc] || !a.insts[pc].Valid() {
			continue
		}
		w := a.classify(uint32(pc))
		if r := a.regionOf[pc]; r >= 0 {
			a.writes[r] = a.writes[r].union(w)
		} else {
			a.progWrites = a.progWrites.union(w)
		}
	}

	// May-edges poison their callers; pinned edges import the callee's set.
	// Iterate to a fixpoint — sets only grow, so it terminates.
	for _, e := range a.calls {
		if e.May {
			a.diagHeap(e.FromPC, ReasonHeapUnknownTarget,
				"transfer target unknown; the callee's writes cannot be bounded")
		}
	}
	for changed := true; changed; {
		changed = false
		for _, e := range a.calls {
			r := int32(-1)
			if int(e.FromPC) < len(a.regionOf) {
				r = a.regionOf[e.FromPC]
			}
			var w WriteSet
			if e.May {
				w = WriteSet{Unknown: true}
			} else if cr, ok := a.entryRegion[e.Callee]; ok {
				w = a.writes[cr]
			}
			if r >= 0 {
				if u := a.writes[r].union(w); u != a.writes[r] {
					a.writes[r] = u
					changed = true
				}
			} else if u := a.progWrites.union(w); u != a.progWrites {
				a.progWrites = u
				changed = true
			}
		}
	}

	for r := range a.writes {
		a.progWrites = a.progWrites.union(a.writes[r])
	}
}

// classify places one reachable instruction's writes, emitting the
// heap-certificate diagnostics for escaping or unplaceable ones.
func (a *analyzer) classify(pc uint32) WriteSet {
	in := &a.insts[pc]
	op := in.Op
	switch isa.InfoOf(op).Heap {
	case isa.HeapNone, isa.HeapRead:
		return WriteSet{}

	case isa.HeapAlloc:
		// Calls, COCREATE and AFB allocate frame-arena storage and write
		// its linkage: run-owned by construction.
		return WriteSet{Frames: true}
	}

	// HeapWrite: placement depends on the opcode's addressing.
	switch {
	case (op >= isa.SL0 && op <= isa.SL7) || op == isa.SLB:
		r := a.regionOf[pc]
		if r >= 0 && a.regions[r].fsi < len(a.p.FrameSizes) &&
			image.FrameHeaderWords+int(in.Arg) < a.p.FrameSizes[a.regions[r].fsi] {
			return WriteSet{Frames: true}
		}
		a.diagHeap(pc, ReasonHeapUnknownTarget,
			"%s local %d lands outside the frame; the write cannot be placed", op, in.Arg)
		return WriteSet{Unknown: true}

	case op == isa.SGB:
		r := a.regionOf[pc]
		if r >= 0 && int(in.Arg) < a.regions[r].inst.Module.NumGlobals {
			a.diagHeap(pc, ReasonHeapEscape,
				"SGB writes global %d of module %s: boot-image state the run does not own",
				in.Arg, a.regions[r].inst.Module.Name)
			return WriteSet{Globals: true}
		}
		a.diagHeap(pc, ReasonHeapUnknownTarget,
			"SGB global %d lands outside the module's globals; the write cannot be placed", in.Arg)
		return WriteSet{Unknown: true}

	case op == isa.STIND || op == isa.WFB:
		if a.values {
			// The values-clean fixpoint admits a raw store only through a
			// tracked record pointer with its offset under every possible
			// site's payload: the write stays inside run-allocated records.
			return WriteSet{Records: true}
		}
		a.diagHeap(pc, ReasonHeapUnknownTarget,
			"%s stores through a pointer the analysis cannot place", op)
		return WriteSet{Unknown: true}

	case op == isa.FFREE || op == isa.FREE:
		if a.values {
			// Tracked frees return run-allocated storage to the arena's
			// free lists: arena linkage writes only.
			return WriteSet{Frames: true}
		}
		a.diagHeap(pc, ReasonHeapUnknownTarget,
			"%s releases storage the analysis cannot place", op)
		return WriteSet{Unknown: true}

	default:
		// RET, XFERO, RETAIN, TRAPB: frame linkage and saved state.
		return WriteSet{Frames: true}
	}
}
