package verify

import (
	"repro/internal/image"
	"repro/internal/mem"
)

// The value lattice of the summary engine. The interval analysis alone
// cannot certify coroutine or trap programs: XFERO's depth effect depends
// on WHERE the popped context word can point, and FREE's safety on where
// the freed frame came from. So, for programs whose transfer surface is
// statically disciplined, the engine tracks a small abstract value for
// every evaluation-stack slot and definitely-assigned local: a 16-bit
// constant (procedure descriptors are link-time LIW immediates), or a
// context word with a provenance and a may-set of frame regions.
//
// Value tracking is best-effort and certificate-only: it may sharpen the
// depth flow (resume pools, handler result summaries) but it must never
// manufacture an Error-level rejection on its own, and the moment anything
// reachable can corrupt the discipline the facts rest on (a raw store, an
// untracked FREE, a transfer to an unknown context), the whole analysis
// reruns with values off — falling back to exactly the conservative
// interval semantics, which need no such facts.

// value kinds.
const (
	vTop  uint8 = iota // anything
	vWord              // exactly the 16-bit constant .word
	vCtx               // a context word: a frame of one of the .regs regions
)

// provenance bits of a vCtx value (OR-monotone: a join accumulates bits,
// and every bit makes the value LESS usable).
const (
	srcCreated uint8 = 1 << iota // a COCREATE result: an embryo (or since-started) frame
	srcEntered                   // retctx in a transfer-only region: a frame suspended at an XFERO
	srcOwn                       // myctx: the running procedure's own frame
	srcTaint                     // retctx where the region can be call- or trap-entered
	srcZero                      // may also be NIL (transfer halts; free faults cleanly)
)

// value is one abstract stack or local slot.
type value struct {
	kind uint8
	src  uint8    // vCtx provenance bits
	word mem.Word // vWord payload
	regs uint64   // vCtx region bitset
}

var topVal = value{kind: vTop}

func wordVal(w mem.Word) value        { return value{kind: vWord, word: w} }
func ctxVal(src uint8, regs uint64) value { return value{kind: vCtx, src: src, regs: regs} }

// join is the lattice join; monotone in both arguments.
func (a value) join(b value) value {
	if a == b {
		return a
	}
	if a.kind != b.kind {
		return topVal
	}
	switch a.kind {
	case vWord:
		if a.word == b.word {
			return a
		}
		return topVal
	case vCtx:
		return value{kind: vCtx, src: a.src | b.src, regs: a.regs | b.regs}
	}
	return topVal
}

// transferable reports whether an XFERO to this context word is covered by
// the resume-pool model: the target is provably NIL (halt), an embryo
// created by COCREATE, or a frame suspended at an XFERO site — never a
// frame suspended inside a call, a trap, or the running frame itself.
func (v value) transferable() bool {
	return v.kind == vCtx && v.src&(srcOwn|srcTaint) == 0
}

// freeable reports whether a FREE of this context word can be certified at
// all: only frames we created, or the retained own frames a procedure
// hands back (checked against the all-returns-retained bit separately).
// Freeing a caller or transferrer (srcEntered) tears down a live frame.
func (v value) freeable() bool {
	return v.kind == vCtx && v.src&(srcEntered|srcTaint) == 0 &&
		v.src&(srcCreated|srcOwn) != 0
}

// maxTrackedRegions bounds the region bitsets; programs with more regions
// run with values off (they keep the old conservative analysis).
const maxTrackedRegions = 64

// pushVal appends v to a copied vals slice (vals are shared across joins,
// so never mutated in place); nil stays nil.
func pushVal(vals []value, d interval, v value) []value {
	if vals == nil {
		if d.lo != d.hi {
			return nil
		}
		vals = make([]value, 0, d.lo+1)
		for i := 0; i < d.lo; i++ {
			vals = append(vals, topVal)
		}
	}
	out := make([]value, len(vals)+1)
	copy(out, vals)
	out[len(vals)] = v
	return out
}

// valAt reads stack slot i (0 = bottom); absent tracking reads top.
func valAt(vals []value, i int) value {
	if vals == nil || i < 0 || i >= len(vals) {
		return topVal
	}
	return vals[i]
}

// dropPush models a generic effect: pop `pops` slots, push `pushes`
// unknown results. Returns nil when the inputs aren't tracked.
func dropPush(vals []value, pops, pushes int) []value {
	if vals == nil || pops > len(vals) {
		return nil
	}
	out := make([]value, len(vals)-pops, len(vals)-pops+pushes)
	copy(out, vals[:len(vals)-pops])
	for i := 0; i < pushes; i++ {
		out = append(out, topVal)
	}
	return out
}

// joinVals joins two stacks pointwise; arity mismatch or an untracked side
// loses tracking.
func joinVals(a, b []value) []value {
	if a == nil || b == nil || len(a) != len(b) {
		return nil
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		return a
	}
	out := make([]value, len(a))
	for i := range a {
		out[i] = a[i].join(b[i])
	}
	return out
}

// isProcWord reports whether v is a known constant carrying the procedure
// descriptor tag.
func (v value) isProcWord() bool { return v.kind == vWord && image.IsProc(v.word) }
