package verify

import (
	"repro/internal/image"
	"repro/internal/mem"
)

// The value lattice of the summary engine. The interval analysis alone
// cannot certify coroutine, trap or heap programs: XFERO's depth effect
// depends on WHERE the popped context word can point, FREE's safety on
// where the freed frame came from, and STIND's on where the address can
// land. So, for programs whose transfer surface is statically disciplined,
// the engine tracks a small abstract value for every evaluation-stack slot
// and definitely-assigned local: a 16-bit constant (procedure descriptors
// are link-time LIW immediates), a bounded unsigned range (loop counters
// under a compare-branch guard), a context word with a provenance and a
// may-set of frame regions, or a record pointer — the result of an AFB —
// with a may-set of allocation sites and a bounded word offset.
//
// Value tracking is best-effort and certificate-only: it may sharpen the
// depth flow (resume pools, handler result summaries) but it must never
// manufacture an Error-level rejection on its own, and the moment anything
// reachable can corrupt the discipline the facts rest on (a raw store the
// record model cannot bound, an untracked FREE, a transfer to an unknown
// context), the whole analysis reruns with values off — falling back to
// exactly the conservative interval semantics, which need no such facts.

// value kinds.
const (
	vTop  uint8 = iota // anything
	vWord              // exactly the 16-bit constant .word
	vCtx               // a context word: a frame of one of the .regs regions
	vRng               // an unsigned word in [.lo, .hi] (singletons stay vWord)
	vRec               // a pointer .off words into a record of one of the .regs allocation sites
)

// provenance bits of a vCtx value (OR-monotone: a join accumulates bits,
// and every bit makes the value LESS usable).
const (
	srcCreated uint8 = 1 << iota // a COCREATE result: an embryo (or since-started) frame
	srcEntered                   // retctx in a transfer-only region: a frame suspended at an XFERO
	srcOwn                       // myctx: the running procedure's own frame
	srcTaint                     // retctx where the region can be call- or trap-entered
	srcZero                      // may also be NIL (transfer halts; free faults cleanly)
)

// value is one abstract stack or local slot. All fields are comparable, so
// values (and stacks of them) compare with ==.
type value struct {
	kind uint8
	src  uint8 // vCtx provenance bits
	// slot is 1+the local slot this stack value was loaded from (0 = no
	// mark). A compare-branch consuming a marked value refines the local's
	// range on each outgoing edge; SL to the slot scrubs stale marks.
	slot   uint8
	word   mem.Word // vWord payload
	lo, hi mem.Word // vRng value bounds / vRec offset bounds
	regs   regSet   // vCtx region set / vRec allocation-site set
}

var topVal = value{kind: vTop}

func wordVal(w mem.Word) value            { return value{kind: vWord, word: w} }
func ctxVal(src uint8, regs regSet) value { return value{kind: vCtx, src: src, regs: regs} }

// rangeVal normalizes a bounded unsigned range; singletons are vWord.
func rangeVal(lo, hi mem.Word) value {
	if lo == hi {
		return wordVal(lo)
	}
	return value{kind: vRng, lo: lo, hi: hi}
}

// rangeOf reads a value as an unsigned range.
func (v value) rangeOf() (lo, hi mem.Word, ok bool) {
	switch v.kind {
	case vWord:
		return v.word, v.word, true
	case vRng:
		return v.lo, v.hi, true
	}
	return 0, 0, false
}

// clearSlot drops the local-load mark (stored copies carry none).
func (v value) clearSlot() value {
	v.slot = 0
	return v
}

// widenHi returns the smallest 2^k-1 >= h: the geometric widening step
// that keeps unguarded counter joins converging in at most 16 rounds.
func widenHi(h mem.Word) mem.Word {
	v := uint32(h)
	v |= v >> 1
	v |= v >> 2
	v |= v >> 4
	v |= v >> 8
	return mem.Word(v)
}

// widenJoin joins [alo,ahi] (the prior state) with [blo,bhi], widening any
// growth beyond the prior range geometrically. Guard refinement at the
// loop's compare-branch re-clamps the widened range, so a bounded counter
// keeps its bound while an unbounded one converges quickly.
func widenJoin(alo, ahi, blo, bhi mem.Word) (mem.Word, mem.Word) {
	lo, hi := alo, ahi
	if blo < lo {
		lo = blo
	}
	if bhi > hi {
		hi = bhi
	}
	if lo == alo && hi == ahi {
		return lo, hi
	}
	if hi > ahi {
		hi = widenHi(hi)
	}
	if lo < alo {
		lo = 0
	}
	return lo, hi
}

// join is the lattice join. The receiver is the prior state at a merge
// point (range growth beyond it widens); the result always contains both
// arguments, so the fixpoint only grows.
func (a value) join(b value) value {
	if a == b {
		return a
	}
	slot := uint8(0)
	if a.slot == b.slot {
		slot = a.slot
	}
	a.slot, b.slot = 0, 0
	j := joinKinds(a, b)
	j.slot = slot
	return j
}

func joinKinds(a, b value) value {
	if a == b {
		return a
	}
	alo, ahi, aok := a.rangeOf()
	blo, bhi, bok := b.rangeOf()
	if aok && bok {
		lo, hi := widenJoin(alo, ahi, blo, bhi)
		return rangeVal(lo, hi)
	}
	if a.kind != b.kind {
		return topVal
	}
	switch a.kind {
	case vCtx:
		return value{kind: vCtx, src: a.src | b.src, regs: a.regs.union(b.regs)}
	case vRec:
		lo, hi := widenJoin(a.lo, a.hi, b.lo, b.hi)
		return value{kind: vRec, regs: a.regs.union(b.regs), lo: lo, hi: hi}
	}
	return topVal
}

// addVals is the abstract ADD: exact on constants, interval arithmetic on
// ranges (only when the 16-bit sum cannot wrap), and offset arithmetic on
// record pointers. ok is false when the result is untracked.
func addVals(x, y value) (value, bool) {
	if x.kind == vWord && y.kind == vWord {
		return wordVal(x.word + y.word), true // exact, wrap included
	}
	if y.kind == vRec {
		x, y = y, x
	}
	if x.kind == vRec {
		ylo, yhi, ok := y.rangeOf()
		if !ok || int(x.hi)+int(yhi) > 0xFFFF {
			return value{}, false
		}
		return value{kind: vRec, regs: x.regs, lo: x.lo + ylo, hi: x.hi + yhi}, true
	}
	xlo, xhi, xok := x.rangeOf()
	ylo, yhi, yok := y.rangeOf()
	if !xok || !yok || int(xhi)+int(yhi) > 0xFFFF {
		return value{}, false
	}
	return rangeVal(xlo+ylo, xhi+yhi), true
}

// subVals is the abstract SUB (x - y), tracked only when no borrow can
// occur (or both are constants, where wrap is exact).
func subVals(x, y value) (value, bool) {
	if x.kind == vWord && y.kind == vWord {
		return wordVal(x.word - y.word), true
	}
	ylo, yhi, yok := y.rangeOf()
	if !yok {
		return value{}, false
	}
	if x.kind == vRec {
		if x.lo < yhi {
			return value{}, false
		}
		return value{kind: vRec, regs: x.regs, lo: x.lo - yhi, hi: x.hi - ylo}, true
	}
	xlo, xhi, xok := x.rangeOf()
	if !xok || xlo < yhi {
		return value{}, false
	}
	return rangeVal(xlo-yhi, xhi-ylo), true
}

// transferable reports whether an XFERO to this context word is covered by
// the resume-pool model: the target is provably NIL (halt), an embryo
// created by COCREATE, or a frame suspended at an XFERO site — never a
// frame suspended inside a call, a trap, or the running frame itself.
func (v value) transferable() bool {
	return v.kind == vCtx && v.src&(srcOwn|srcTaint) == 0
}

// freeable reports whether a FREE of this context word can be certified at
// all: only frames we created, or the retained own frames a procedure
// hands back (checked against the all-returns-retained bit separately).
// Freeing a caller or transferrer (srcEntered) tears down a live frame.
func (v value) freeable() bool {
	return v.kind == vCtx && v.src&(srcEntered|srcTaint) == 0 &&
		v.src&(srcCreated|srcOwn) != 0
}

// pushVal appends v to a copied vals slice (vals are shared across joins,
// so never mutated in place); nil stays nil.
func pushVal(vals []value, d interval, v value) []value {
	if vals == nil {
		if d.lo != d.hi {
			return nil
		}
		vals = make([]value, 0, d.lo+1)
		for i := 0; i < d.lo; i++ {
			vals = append(vals, topVal)
		}
	}
	out := make([]value, len(vals)+1)
	copy(out, vals)
	out[len(vals)] = v
	return out
}

// valAt reads stack slot i (0 = bottom); absent tracking reads top.
func valAt(vals []value, i int) value {
	if vals == nil || i < 0 || i >= len(vals) {
		return topVal
	}
	return vals[i]
}

// dropPush models a generic effect: pop `pops` slots, push `pushes`
// unknown results. Returns nil when the inputs aren't tracked.
func dropPush(vals []value, pops, pushes int) []value {
	if vals == nil || pops > len(vals) {
		return nil
	}
	out := make([]value, len(vals)-pops, len(vals)-pops+pushes)
	copy(out, vals[:len(vals)-pops])
	for i := 0; i < pushes; i++ {
		out = append(out, topVal)
	}
	return out
}

// joinVals joins two stacks pointwise; arity mismatch or an untracked side
// loses tracking. a is the prior state (widening direction).
func joinVals(a, b []value) []value {
	if a == nil || b == nil || len(a) != len(b) {
		return nil
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		return a
	}
	out := make([]value, len(a))
	for i := range a {
		out[i] = a[i].join(b[i])
	}
	return out
}

// scrubSlot clears stale local-load marks after an SL to the slot: stack
// copies loaded before the store no longer equal the local's value. vals
// must be freshly allocated (dropPush output), so in-place is safe.
func scrubSlot(vals []value, mark uint8) []value {
	for i := range vals {
		if vals[i].slot == mark {
			vals[i].slot = 0
		}
	}
	return vals
}

// locGet reads the flow-sensitive local value; absent slots read top.
func locGet(locs []value, slot int) value {
	if slot < 0 || slot >= len(locs) {
		return topVal
	}
	return locs[slot]
}

// locSet writes the flow-sensitive local value, copy-on-write, trimming
// trailing tops so states stay canonical (equal states compare equal).
func locSet(locs []value, slot int, v value) []value {
	if slot < 0 || slot >= 64 {
		return locs
	}
	v = v.clearSlot()
	if v == topVal && slot >= len(locs) {
		return locs
	}
	n := len(locs)
	if slot+1 > n {
		n = slot + 1
	}
	out := make([]value, n)
	copy(out, locs)
	out[slot] = v
	for len(out) > 0 && out[len(out)-1] == topVal {
		out = out[:len(out)-1]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// joinLocs joins the flow-sensitive locals pointwise; absent slots are
// top, and trailing tops are trimmed to keep the canonical form.
func joinLocs(a, b []value) []value {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for n > 0 {
		if j := a[n-1].join(b[n-1]); j != topVal {
			break
		}
		n--
	}
	if n == 0 {
		return nil
	}
	same := n == len(a)
	if same {
		for i := 0; i < n; i++ {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		return a
	}
	out := make([]value, n)
	for i := 0; i < n; i++ {
		out[i] = a[i].join(b[i])
	}
	for len(out) > 0 && out[len(out)-1] == topVal {
		out = out[:len(out)-1]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func locsEqual(a, b []value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// isProcWord reports whether v is a known constant carrying the procedure
// descriptor tag.
func (v value) isProcWord() bool { return v.kind == vWord && image.IsProc(v.word) }
