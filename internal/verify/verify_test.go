package verify_test

import (
	"testing"

	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/linker"
	"repro/internal/verify"
	"repro/internal/workload"
)

func buildWorkload(t *testing.T, w *workload.Program, early bool) *image.Program {
	t.Helper()
	prog, _, err := w.Build(linker.Options{EarlyBind: early})
	if err != nil {
		t.Fatalf("build %s: %v", w.Name, err)
	}
	return prog
}

func linkOne(t *testing.T, m *image.Module, entry string) *image.Program {
	t.Helper()
	prog, _, err := linker.Link([]*image.Module{m}, m.Name, entry, linker.Options{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return prog
}

func hasReason(diags []verify.Diag, reason verify.Reason) bool {
	for _, d := range diags {
		if d.Reason == reason {
			return true
		}
	}
	return false
}

// Recursive compiler output must be admitted, certified, and carry sane
// per-procedure summaries — recursion is handled by the interprocedural
// fixpoint, not flagged as unbounded.
func TestFibAdmittedAndCertified(t *testing.T) {
	for _, early := range []bool{false, true} {
		prog := buildWorkload(t, workload.Fib(10), early)
		r := verify.Program(prog)
		if !r.Admitted() {
			t.Fatalf("early=%v: fib rejected:\n%s", early, r)
		}
		if !r.CertStackBounds {
			t.Fatalf("early=%v: fib denied stack-bounds certificate:\n%s", early, r)
		}
		var sawFib bool
		for _, p := range r.Procs {
			if p.MaxDepth < 0 {
				continue
			}
			if p.MaxDepth > isa.EvalStackDepth {
				t.Errorf("early=%v: %s max depth %d exceeds the stack", early, p.Name, p.MaxDepth)
			}
			if p.Name == "fib.fib" {
				sawFib = true
				if p.ResultLo != 1 || p.ResultHi != 1 {
					t.Errorf("early=%v: fib.fib results [%d,%d], want [1,1]", early, p.ResultLo, p.ResultHi)
				}
			}
		}
		if !sawFib {
			t.Errorf("early=%v: no reached lib.fib in %+v", early, r.Procs)
		}
	}
}

// Every checked-in workload must at least be admitted under both linkage
// policies (coroutine/trap workloads legitimately lose the certificate).
func TestCorpusAdmitted(t *testing.T) {
	for _, w := range workload.Corpus() {
		for _, early := range []bool{false, true} {
			prog := buildWorkload(t, w, early)
			if r := verify.Program(prog); !r.Admitted() {
				t.Errorf("%s early=%v rejected:\n%s", w.Name, early, r)
			}
		}
	}
}

// Generator output is the fuzzing front line: every random program must be
// admitted (the full 0–9999 sweep runs in difffuzz / make verify-corpus).
func TestRandomProgramsAdmitted(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		for _, early := range []bool{false, true} {
			prog := buildWorkload(t, workload.RandomProgram(seed), early)
			if r := verify.Program(prog); !r.Admitted() {
				t.Errorf("seed %d early=%v rejected:\n%s", seed, early, r)
			}
		}
	}
}

// jumpPatchProgram links { LI0; JB l; LIW imm; l: HALT } and then moves the
// JB offset back by delta bytes, so the jump lands inside the LIW operand.
func jumpPatchProgram(t *testing.T, imm int32, delta byte) *image.Program {
	t.Helper()
	var a image.Asm
	l := a.NewLabel()
	a.Emit(isa.LI0)
	a.EmitJump(isa.JB, l)
	a.Emit(isa.LIW, imm)
	a.Bind(l)
	a.Emit(isa.HALT)
	m := &image.Module{Name: "m", Procs: []*image.Proc{{Name: "p", Body: a.Fragment()}}}
	prog := linkOne(t, m, "p")
	// Find the JB from the entry and bend its offset.
	insts, _ := isa.Predecode(prog.Code)
	pc := prog.Instances[0].ProcEntryPC(0)
	for insts[pc].Op != isa.JB {
		if !insts[pc].Valid() {
			t.Fatalf("no JB found from entry %06x", pc)
		}
		pc += uint32(insts[pc].Size)
	}
	prog.Code[pc+1] -= delta
	return prog
}

// A jump bent onto a byte where no instruction decodes is a definite
// runtime error: rejected.
func TestBadJumpTargetRejected(t *testing.T) {
	// LIW 0xFFFF encodes as FF FF; 0xFF is not an opcode.
	prog := jumpPatchProgram(t, int32(0xFFFF), 1)
	r := verify.Program(prog)
	if r.Admitted() {
		t.Fatalf("bad jump target admitted:\n%s", r)
	}
	if !hasReason(r.Errors(), verify.ReasonBadJumpTarget) {
		t.Fatalf("missing %s:\n%s", verify.ReasonBadJumpTarget, r)
	}
}

// A jump into another instruction's operand bytes that still decodes is a
// shadow stream: legal for the machine, warned, admitted.
func TestJumpIntoOperandsWarned(t *testing.T) {
	// LIW 0x0101 encodes as 01 01; 0x01 decodes as HALT.
	prog := jumpPatchProgram(t, int32(0x0101), 1)
	r := verify.Program(prog)
	if !r.Admitted() {
		t.Fatalf("shadow-stream jump rejected:\n%s", r)
	}
	if !hasReason(r.Warnings(), verify.ReasonJumpIntoOperands) {
		t.Fatalf("missing %s:\n%s", verify.ReasonJumpIntoOperands, r)
	}
}

// An entry descriptor whose entry index points past the instance's entry
// vector must be rejected.
func TestDescriptorPastEVRejected(t *testing.T) {
	prog := buildWorkload(t, workload.Fib(5), false)
	inst := prog.Instances[0]
	desc, err := image.DescriptorFor(inst.GFIBase, len(inst.Module.Procs))
	if err != nil {
		t.Fatalf("descriptor: %v", err)
	}
	prog.Entry = desc
	r := verify.Program(prog)
	if r.Admitted() {
		t.Fatalf("descriptor past EV admitted:\n%s", r)
	}
	if !hasReason(r.Errors(), verify.ReasonBadDescriptor) {
		t.Fatalf("missing %s:\n%s", verify.ReasonBadDescriptor, r)
	}
}

// Invalid slots that are not reachable — here, garbage appended after the
// last procedure — must NOT reject the program, and must not cost it the
// certificate either.
func TestUnreachableInvalidSlotsAccepted(t *testing.T) {
	prog := buildWorkload(t, workload.Fib(5), false)
	prog.Code = append(prog.Code, 0xFF, 0xFF, 0xFF)
	r := verify.Program(prog)
	if !r.Admitted() {
		t.Fatalf("unreachable garbage rejected:\n%s", r)
	}
	if !r.CertStackBounds {
		t.Fatalf("unreachable garbage cost the certificate:\n%s", r)
	}
}

// Fourteen pushes in a straight line definitely overflow the 13-word
// stack: rejected with a definite diagnostic, not a maybe.
func TestDefiniteOverflowRejected(t *testing.T) {
	var a image.Asm
	for i := 0; i <= isa.EvalStackDepth; i++ {
		a.Emit(isa.LI1)
	}
	a.Emit(isa.HALT)
	m := &image.Module{Name: "m", Procs: []*image.Proc{{Name: "p", Body: a.Fragment()}}}
	r := verify.Program(linkOne(t, m, "p"))
	if r.Admitted() {
		t.Fatalf("definite overflow admitted:\n%s", r)
	}
	if !hasReason(r.Errors(), verify.ReasonStackOverflow) {
		t.Fatalf("missing %s:\n%s", verify.ReasonStackOverflow, r)
	}
}

// A POP on procedure entry (depth is exactly 0) definitely underflows.
func TestDefiniteUnderflowRejected(t *testing.T) {
	var a image.Asm
	a.Emit(isa.POP)
	a.Emit(isa.HALT)
	m := &image.Module{Name: "m", Procs: []*image.Proc{{Name: "p", Body: a.Fragment()}}}
	r := verify.Program(linkOne(t, m, "p"))
	if r.Admitted() {
		t.Fatalf("definite underflow admitted:\n%s", r)
	}
	if !hasReason(r.Errors(), verify.ReasonStackUnderflow) {
		t.Fatalf("missing %s:\n%s", verify.ReasonStackUnderflow, r)
	}
}

// A net-push loop MIGHT overflow (it does at run time, but only after some
// iterations): the verifier admits it — the machine's checked push catches
// it — but withholds the certificate.
func TestNetPushLoopAdmittedUncertified(t *testing.T) {
	var a image.Asm
	l := a.NewLabel()
	a.Bind(l)
	a.Emit(isa.LI0)
	a.EmitJump(isa.JB, l)
	m := &image.Module{Name: "m", Procs: []*image.Proc{{Name: "p", Body: a.Fragment()}}}
	r := verify.Program(linkOne(t, m, "p"))
	if !r.Admitted() {
		t.Fatalf("net-push loop rejected:\n%s", r)
	}
	if r.CertStackBounds {
		t.Fatalf("net-push loop certified:\n%s", r)
	}
	if !hasReason(r.Warnings(), verify.ReasonMaybeOverflow) {
		t.Fatalf("missing %s:\n%s", verify.ReasonMaybeOverflow, r)
	}
}

// Depth annotations must exist for reached pcs and stay inside the stack.
func TestDepthsPopulated(t *testing.T) {
	prog := buildWorkload(t, workload.Fib(5), true)
	r := verify.Program(prog)
	entry := prog.Instances[0].ProcEntryPC(0)
	lo, hi, ok := r.DepthAt(entry)
	if !ok {
		t.Fatalf("entry %06x unreached", entry)
	}
	if lo != 0 || hi != 0 {
		t.Errorf("entry depth [%d,%d], want [0,0]", lo, hi)
	}
	for pc, d := range r.Depths {
		if d[0] < 0 || d[1] > isa.EvalStackDepth || d[0] > d[1] {
			t.Errorf("pc %06x: bad interval %v", pc, d)
		}
	}
}
