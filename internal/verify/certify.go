package verify

import (
	"repro/internal/isa"
)

// Stage 2 of the verifier: certificate derivation over the stage-1
// fixpoint. The worklist guarantees every pc's last step saw its final
// state, so most value rules were already enforced in flow; what remains
// here are the judgments that depend on facts falsified AFTER a site's
// last step (the retain discipline of a summarized callee) and the
// diagnostics deliberately deferred until the trap-arming question
// settled (the unarmed-TRAPB stack effect).
func (a *analyzer) certify() {
	if !a.values {
		return
	}
	for pc := 0; pc < len(a.code); pc++ {
		if !a.reached[pc] || !a.insts[pc].Valid() {
			continue
		}
		s := a.state[pc]
		if pp, ok := a.defFlow[uint32(pc)]; ok {
			// A fixed stack effect looked definitely out of bounds at some
			// point of the fixpoint. Re-judge against the final interval:
			// still definite means the instruction can never execute
			// cleanly; otherwise the site's last step already recorded the
			// maybe- diagnostics.
			pops, pushes := pp[0], pp[1]
			if s.d.hi < pops {
				a.diag(uint32(pc), LevelError, ReasonStackUnderflow,
					"%s pops %d with at most %d on the stack", a.insts[pc].Op, pops, s.d.hi)
			} else if lo := max(s.d.lo-pops, 0); lo+pushes > maxDepth {
				a.diag(uint32(pc), LevelError, ReasonStackOverflow,
					"%s pushes to depth %d past the %d-word stack", a.insts[pc].Op, lo+pushes, maxDepth)
			}
		}
		switch a.insts[pc].Op {
		case isa.FREE:
			a.certFree(uint32(pc), s)

		case isa.TRAPB:
			if a.armed {
				break
			}
			// No reachable STRAP ever arms a handler: the deferred Go-path
			// stack effect is the only behaviour, so report it the way the
			// conservative analysis would.
			if s.d.lo+1 > maxDepth {
				a.diag(uint32(pc), LevelError, ReasonStackOverflow,
					"%s pushes to depth %d past the %d-word stack", a.insts[pc].Op, s.d.lo+1, maxDepth)
			} else if s.d.hi+1 > maxDepth {
				a.diagCert(uint32(pc), ReasonMaybeOverflow,
					"%s can push to depth %d past the %d-word stack", a.insts[pc].Op, s.d.hi+1, maxDepth)
			}
		}
		if a.taint {
			return
		}
	}
}

// certFree re-validates an own-frame FREE against the final summaries:
// the freed procedure must have retained its frame on every return path,
// and a frame cannot free itself.
func (a *analyzer) certFree(pc uint32, s absState) {
	if !s.d.exact() || s.vals == nil || s.d.lo < 1 {
		// Stage 1 already tainted these.
		return
	}
	v := s.vals[len(s.vals)-1]
	if v.kind != vCtx || v.src&srcOwn == 0 {
		return
	}
	cur := int(a.regionOf[pc])
	bad := false
	v.regs.forEach(func(T int) {
		if T == cur || !a.retainedAll[T] || !a.retSeen[T] {
			bad = true
		}
	})
	if bad {
		a.setTaint()
	}
}
