package verify_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/verify"
	"repro/internal/workload"
)

func hasReasonStr(reasons []string, want verify.Reason) bool {
	for _, r := range reasons {
		if r == string(want) {
			return true
		}
	}
	return false
}

// A callee that stores through a caller-passed record pointer writes
// storage the summary analysis cannot place: record values never cross a
// call boundary, so the store surrenders to the conservative semantics.
// The program stays admitted but holds neither certificate, and the write
// set is Unknown with the heap-unknown-target reason.
func TestHeapWriteThroughCallerRecordUncertified(t *testing.T) {
	w := &workload.Program{
		Name: "caller-record",
		Sources: map[string]string{"cr": `
module cr;
proc poke(p, v) { store(p, v); return 0; }
proc main(n) {
  var a = alloc(4);
  poke(a, n);
  var v = load(a);
  dealloc(a);
  return v;
}
`},
		Module: "cr", Proc: "main",
	}
	for _, early := range []bool{false, true} {
		r := verify.Program(buildWorkload(t, w, early))
		if !r.Admitted() {
			t.Fatalf("early=%v: rejected:\n%s", early, r)
		}
		if r.CertHeapEffects {
			t.Errorf("early=%v: heap certificate granted to an unplaceable store", early)
		}
		if !r.Writes.Unknown {
			t.Errorf("early=%v: write set %s, want unknown", early, r.Writes)
		}
		if r.MaxDirtyWords != -1 {
			t.Errorf("early=%v: MaxDirtyWords = %d, want -1 (vacuous bound)", early, r.MaxDirtyWords)
		}
		if !hasReasonStr(r.HeapCertReasons(), verify.ReasonHeapUnknownTarget) {
			t.Errorf("early=%v: heap reasons %v, want %s", early, r.HeapCertReasons(), verify.ReasonHeapUnknownTarget)
		}
	}
}

// A record pointer handed to a coroutine through a transfer escapes into a
// retained frame: the resumed side sees an untracked value and its store
// cannot be placed. Admitted, uncertified, unknown write set.
func TestHeapEscapeViaRetainedFrameUncertified(t *testing.T) {
	w := &workload.Program{
		Name: "retained-escape",
		Sources: map[string]string{"re": `
module re;
proc prod(start) {
  var who = retctx();
  var p = start;
  while (1) {
    store(p, 7);
    p = transfer(who, 0);
  }
}
proc main() {
  var a = alloc(4);
  var co = cocreate(prod);
  transfer(co, a);
  var v = load(a);
  dealloc(a);
  return v;
}
`},
		Module: "re", Proc: "main",
	}
	for _, early := range []bool{false, true} {
		r := verify.Program(buildWorkload(t, w, early))
		if !r.Admitted() {
			t.Fatalf("early=%v: rejected:\n%s", early, r)
		}
		if r.CertHeapEffects {
			t.Errorf("early=%v: heap certificate granted to an escaped record", early)
		}
		if !r.Writes.Unknown {
			t.Errorf("early=%v: write set %s, want unknown", early, r.Writes)
		}
		if !hasReasonStr(r.HeapCertReasons(), verify.ReasonHeapUnknownTarget) {
			t.Errorf("early=%v: heap reasons %v, want %s", early, r.HeapCertReasons(), verify.ReasonHeapUnknownTarget)
		}
	}
}

// A module-global write lands in boot-image storage: statically placed and
// bounded (the stack-bounds certificate survives), but it escapes the run,
// so the heap certificate is denied with heap-escape and the dirty bound
// is the module's global window.
func TestHeapWriteIntoBootImage(t *testing.T) {
	w := &workload.Program{
		Name: "boot-write",
		Sources: map[string]string{"bw": `
module bw;
var total = 0;
proc main(n) {
  total = total + n;
  return total;
}
`},
		Module: "bw", Proc: "main",
	}
	for _, early := range []bool{false, true} {
		r := verify.Program(buildWorkload(t, w, early))
		if !r.Admitted() {
			t.Fatalf("early=%v: rejected:\n%s", early, r)
		}
		if !r.CertStackBounds {
			t.Errorf("early=%v: global write cost the stack-bounds certificate:\n%s", early, r)
		}
		if r.CertHeapEffects {
			t.Errorf("early=%v: heap certificate granted to a boot-image write", early)
		}
		if !r.Writes.Globals || r.Writes.Unknown {
			t.Errorf("early=%v: write set %s, want globals and placed", early, r.Writes)
		}
		if r.MaxDirtyWords < 1 || r.MaxDirtyWords != r.GlobalWords {
			t.Errorf("early=%v: MaxDirtyWords = %d (GlobalWords %d), want the module's global window",
				early, r.MaxDirtyWords, r.GlobalWords)
		}
		if !hasReasonStr(r.HeapCertReasons(), verify.ReasonHeapEscape) {
			t.Errorf("early=%v: heap reasons %v, want %s", early, r.HeapCertReasons(), verify.ReasonHeapEscape)
		}
	}
}

// An armed trap handler that writes a global poisons the whole program's
// write set through the trap edge: any instruction dispatching through the
// handler can write boot-image state.
func TestTrapHandlerWritesUncertified(t *testing.T) {
	w := &workload.Program{
		Name: "trap-writes",
		Sources: map[string]string{"tw": `
module tw;
var hits = 0;
proc handler(code) { hits = hits + 1; return code; }
proc main() {
  settrap(handler);
  return trap(3);
}
`},
		Module: "tw", Proc: "main",
	}
	for _, early := range []bool{false, true} {
		r := verify.Program(buildWorkload(t, w, early))
		if !r.Admitted() {
			t.Fatalf("early=%v: rejected:\n%s", early, r)
		}
		if r.CertHeapEffects {
			t.Errorf("early=%v: heap certificate granted despite a writing trap handler", early)
		}
		if !r.Writes.Globals {
			t.Errorf("early=%v: write set %s, want globals", early, r.Writes)
		}
		if !hasReasonStr(r.HeapCertReasons(), verify.ReasonHeapEscape) {
			t.Errorf("early=%v: heap reasons %v, want %s", early, r.HeapCertReasons(), verify.ReasonHeapEscape)
		}
		h, ok := procInfo(r, "tw.handler")
		if !ok {
			t.Fatalf("early=%v: no tw.handler in report", early)
		}
		if !h.Writes.Globals {
			t.Errorf("early=%v: handler write set %s, want globals", early, h.Writes)
		}
	}
}

// The value analysis used to switch off beyond 64 procedures (one word of
// region bits); the sparse region set lifts that to 256. A 70-procedure
// program whose every procedure allocates, stores into and frees a record
// must hold both certificates — with the old cap the stores would taint
// and the heap writes would be unplaceable.
func TestManyProcsCertified(t *testing.T) {
	const procs = 70
	var sb strings.Builder
	sb.WriteString("module big;\n")
	for i := 0; i < procs-1; i++ {
		next := fmt.Sprintf("p%d", i+1)
		if i == procs-2 {
			next = "last"
		}
		fmt.Fprintf(&sb, `proc p%d(x) {
  var a = alloc(4);
  store(a, x);
  var v = load(a);
  dealloc(a);
  return v + %s(x);
}
`, i, next)
	}
	sb.WriteString("proc last(x) { return x; }\n")
	sb.WriteString("proc main(n) { return p0(n); }\n")

	w := &workload.Program{
		Name:    "many-procs",
		Sources: map[string]string{"big": sb.String()},
		Module:  "big", Proc: "main",
	}
	for _, early := range []bool{false, true} {
		r := verify.Program(buildWorkload(t, w, early))
		if !r.Admitted() {
			t.Fatalf("early=%v: rejected:\n%s", early, r)
		}
		if len(r.Procs) <= 64 {
			t.Fatalf("early=%v: only %d procedures; the test no longer exceeds the old cap", early, len(r.Procs))
		}
		if !r.CertStackBounds {
			t.Errorf("early=%v: %d-proc program denied the stack-bounds certificate:\n%s", early, len(r.Procs), r)
		}
		if !r.CertHeapEffects {
			t.Errorf("early=%v: %d-proc program denied the heap certificate:\n%s", early, len(r.Procs), r)
		}
		if !r.Writes.Records {
			t.Errorf("early=%v: write set %s, want records (every proc stores into one)", early, r.Writes)
		}
	}
}
