package verify

import (
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Stage 1 of the verifier: the per-procedure summary engine. step() is the
// abstract transfer function over absState; procedures are entered once in
// the canonical [0,0] context and summarized at their RETs (result depth,
// result values, freed set), call sites consume summaries, and XFERO
// sites with tracked targets feed the per-region resume pools. All side
// tables grow monotonically and requeue their registered readers, so the
// worklist converges to a fixpoint regardless of step order.

// Site-registration kinds (dedup keys in a.siteSeen).
const (
	siteXfer = iota
	siteLRC
	siteLL
)

func (a *analyzer) addSite(list *[]uint32, kind, r int, pc uint32) {
	key := uint64(kind)<<60 | uint64(uint32(r))<<30 | uint64(pc)
	if !a.siteSeen[key] {
		a.siteSeen[key] = true
		*list = append(*list, pc)
	}
}

func (a *analyzer) addTrapSite(pc uint32) {
	if !a.trapSeen[pc] {
		a.trapSeen[pc] = true
		a.trapSites = append(a.trapSites, pc)
	}
}

// topState widens the stack to unknown while keeping the frame-local facts
// (assigned locals, retain mark, freed sets, local values) that a wild
// stack cannot invalidate on its own.
func topState(s absState) absState {
	return s.deriv(top)
}

// xferSrcAdd records that a frame of region src can transfer into region
// T, so T's retctx may name an src frame suspended at an XFERO.
func (a *analyzer) xferSrcAdd(T, src int) {
	if !a.xferSrc[T].has(src) {
		a.xferSrc[T] = a.xferSrc[T].add(src)
		for _, p := range a.lrcSites[T] {
			a.enqueue(p)
		}
	}
}

// bumpPool folds one transfer (cross-depth dx, transferring region src,
// freed mask) into region T's resume pool and wakes T's XFERO sites.
func (a *analyzer) bumpPool(T, dx, src int, freed regSet) {
	changed := false
	if !a.poolOK[T] {
		a.poolOK[T] = true
		a.pool[T] = interval{dx, dx}
		changed = true
	} else if j := a.pool[T].join(interval{dx, dx}); j != a.pool[T] {
		a.pool[T] = j
		changed = true
	}
	if u := a.poolFreed[T].union(freed); u != a.poolFreed[T] {
		a.poolFreed[T] = u
		changed = true
	}
	if changed {
		for _, p := range a.xferSites[T] {
			a.enqueue(p)
		}
	}
	a.xferSrcAdd(T, src)
}

// handlerResults joins the result summaries of all known trap handlers.
func (a *analyzer) handlerResults() (interval, bool) {
	var rh interval
	ok := false
	a.handlers.forEach(func(T int) {
		if !a.sumOK[T] {
			return
		}
		if !ok {
			rh, ok = a.sum[T], true
		} else {
			rh = rh.join(a.sum[T])
		}
	})
	return rh, ok
}

func (a *analyzer) handlerFreed() regSet {
	var f regSet
	a.handlers.forEach(func(T int) {
		f = f.union(a.sumFreed[T])
	})
	return f
}

// recSite returns the stable allocation-site index of the AFB at pc,
// registering it on first sight. Programs with more reachable AFB sites
// than the set width degrade those allocations to untracked words.
func (a *analyzer) recSite(pc uint32) (int, bool) {
	if s, ok := a.recSiteOf[pc]; ok {
		return s, true
	}
	if len(a.sitePayload) >= maxTrackedRegions {
		return 0, false
	}
	fsi := int(a.insts[pc].Arg)
	if fsi < 0 || fsi >= len(a.p.FrameSizes) {
		return 0, false
	}
	s := len(a.sitePayload)
	a.recSiteOf[pc] = s
	a.sitePayload = append(a.sitePayload, a.p.FrameSizes[fsi])
	return s, true
}

// minSitePayload is the smallest record body any site of the set grants:
// the bound certified writes must stay under.
func (a *analyzer) minSitePayload(sites regSet) int {
	min := -1
	sites.forEach(func(s int) {
		if s < len(a.sitePayload) && (min < 0 || a.sitePayload[s] < min) {
			min = a.sitePayload[s]
		}
	})
	return min
}

// applyEffect applies a fixed stack effect at pc: definite faults are
// Errors (the path ends), possible faults are certificate-blocking Warns
// (the surviving depths continue).
func (a *analyzer) applyEffect(pc uint32, d interval, pops, pushes int) (interval, bool) {
	if d.hi < pops {
		if a.values {
			// The interval may still widen (resume pools, callee
			// summaries); defer the judgment to certify.
			a.defFlow[pc] = [2]int{pops, pushes}
			return interval{}, false
		}
		a.diag(pc, LevelError, ReasonStackUnderflow,
			"%s pops %d with at most %d on the stack", a.insts[pc].Op, pops, d.hi)
		return interval{}, false
	}
	if d.lo < pops {
		a.diagCert(pc, ReasonMaybeUnderflow,
			"%s pops %d with as few as %d on the stack", a.insts[pc].Op, pops, d.lo)
	}
	after := interval{d.lo - pops, d.hi - pops}
	if after.lo < 0 {
		after.lo = 0
	}
	if after.lo+pushes > maxDepth {
		if a.values {
			// Joins can lower the floor later; defer as above.
			a.defFlow[pc] = [2]int{pops, pushes}
			return interval{}, false
		}
		a.diag(pc, LevelError, ReasonStackOverflow,
			"%s pushes to depth %d past the %d-word stack", a.insts[pc].Op, after.lo+pushes, maxDepth)
		return interval{}, false
	}
	if after.hi+pushes > maxDepth {
		a.diagCert(pc, ReasonMaybeOverflow,
			"%s can push to depth %d past the %d-word stack", a.insts[pc].Op, after.hi+pushes, maxDepth)
		after.hi = maxDepth - pushes
	}
	after.lo += pushes
	after.hi += pushes
	return after, true
}

func (a *analyzer) step(pc uint32, s absState) {
	in := &a.insts[pc]
	if !in.Valid() {
		reason := ReasonTruncated
		if isa.Op(a.code[pc]) >= isa.NumOps {
			reason = ReasonBadOpcode
		}
		a.diag(pc, LevelError, reason, "%v", in.Err(a.code, int(pc)))
		return
	}
	if r := a.regionOf[pc]; r >= 0 && s.d.hi > a.maxHi[r] {
		a.maxHi[r] = s.d.hi
	}
	op := in.Op
	next := pc + uint32(in.Size)

	switch {
	case op == isa.HALT:
		return

	case op == isa.RET:
		a.doRet(pc, s)
		return

	case op.IsJump():
		a.doJump(pc, in, s, next)
		return

	case op.IsCall():
		a.doCall(pc, in, s, next)
		return

	case op == isa.XFERO:
		a.doXfer(pc, s, next)
		return

	case op == isa.TRAPB:
		a.doTrapB(pc, s, next)
		return

	case op == isa.DIV || op == isa.MOD:
		a.doDivMod(pc, s, next)
		return

	case op == isa.STRAP:
		a.doStrap(pc, s, next)
		return

	case op == isa.COCREATE:
		a.doCocreate(pc, in, s, next)
		return

	case op == isa.FREE:
		a.doFree(pc, s, next)
		return

	case op == isa.FFREE:
		a.doFFree(pc, s, next)
		return

	case op == isa.STIND || op == isa.WFB:
		a.doStore(pc, in, s, next)
		return
	}

	// Remaining opcodes have a fixed effect from the metadata table, plus
	// per-opcode operand sanity checks and value transfer.
	info := isa.InfoOf(op)
	if info.Pops < 0 || info.Pushes < 0 {
		// Defensive: a variable effect not handled above.
		a.diagCert(pc, ReasonDynamicTransfer, "%s has a state-dependent stack effect", op)
		a.propagate(pc, next, topState(s))
		return
	}
	switch {
	case op >= isa.LL0 && op <= isa.LAB:
		a.checkLocal(pc, in)
	case op >= isa.LG0 && op <= isa.SGB:
		a.checkGlobal(pc, in)
	case op == isa.AFB:
		if int(in.Arg) >= len(a.p.FrameSizes) {
			a.diag(pc, LevelError, ReasonBadFrameSize,
				"AFB class %d outside the %d-class frame-size table", in.Arg, len(a.p.FrameSizes))
			return
		}
	}
	after, ok := a.applyEffect(pc, s.d, int(info.Pops), int(info.Pushes))
	if !ok {
		return
	}
	out := s.deriv(after)
	if op == isa.RETAIN {
		out.ret = true
	}
	if a.values && after.exact() {
		a.stepValues(pc, in, s, &out)
	}
	a.propagate(pc, next, out)
}

// doStore handles STIND and WFB. A store the record model can bound — a
// tracked record pointer, sites alive, offset under every site's payload —
// stays inside run-allocated storage and is certifiable. Anything else can
// rewrite frame words, saved pcs or table linkage: nothing value tracking
// rests on survives it, so the analysis reruns conservatively.
func (a *analyzer) doStore(pc uint32, in *isa.Inst, s absState, next uint32) {
	op := in.Op
	if a.values && s.d.exact() && s.vals != nil && s.d.lo >= 2 {
		ptr := s.vals[len(s.vals)-1]
		off := 0
		if op == isa.WFB {
			off = int(in.Arg)
		}
		if ptr.kind == vRec && !ptr.regs.empty() && !ptr.regs.intersects(s.frec) {
			if max := a.minSitePayload(ptr.regs); max >= 0 && int(ptr.hi)+off < max {
				out := s.deriv(interval{s.d.lo - 2, s.d.lo - 2})
				out.vals = dropPush(s.vals, 2, 0)
				a.propagate(pc, next, out)
				return
			}
		}
	}
	if a.values {
		a.setTaint()
	}
	a.diagCert(pc, ReasonHeapStore,
		"%s stores through an arbitrary pointer and can reach frame or table linkage", op)
	info := isa.InfoOf(op)
	if after, ok := a.applyEffect(pc, s.d, int(info.Pops), int(info.Pushes)); ok {
		a.propagate(pc, next, s.deriv(after))
	}
}

// doFFree handles FFREE: releasing a tracked record pointer at offset zero
// returns exactly the storage an AFB granted. The freed sites join the
// freed-record set, so later stores through stale pointers to them taint.
func (a *analyzer) doFFree(pc uint32, s absState, next uint32) {
	if a.values && s.d.exact() && s.vals != nil && s.d.lo >= 1 {
		v := s.vals[len(s.vals)-1]
		if v.kind == vRec && v.lo == 0 && v.hi == 0 && !v.regs.empty() && !v.regs.intersects(s.frec) {
			out := s.deriv(interval{s.d.lo - 1, s.d.lo - 1})
			out.vals = dropPush(s.vals, 1, 0)
			out.frec = s.frec.union(v.regs)
			a.propagate(pc, next, out)
			return
		}
	}
	if a.values {
		a.setTaint()
	}
	a.diagCert(pc, ReasonUnsafeFree, "FFREE releases a context the verifier cannot track")
	if after, ok := a.applyEffect(pc, s.d, 1, 0); ok {
		a.propagate(pc, next, s.deriv(after))
	}
}

// stepValues transfers the value stack across a fixed-effect opcode; out.d
// is exact here, so materializing unknown slots is always well-defined.
func (a *analyzer) stepValues(pc uint32, in *isa.Inst, s absState, out *absState) {
	op := in.Op
	info := isa.InfoOf(op)
	out.vals = dropPush(s.vals, int(info.Pops), int(info.Pushes))
	r := int(a.regionOf[pc])
	setTop := func(v value) {
		if out.vals == nil {
			out.vals = materialize(nil, out.d.lo)
		}
		out.vals[len(out.vals)-1] = v
	}
	switch {
	case op >= isa.LIN1 && op <= isa.LIW:
		setTop(wordVal(mem.Word(uint16(in.Arg))))

	case op == isa.LRC:
		if r >= 0 && r < maxTrackedRegions {
			a.addSite(&a.lrcSites[r], siteLRC, r, pc)
			if a.callEntered[r] {
				// A caller's or trapper's frame: suspended inside a call,
				// outside the resume-pool model.
				setTop(ctxVal(srcTaint, regSet{}))
			} else {
				setTop(ctxVal(srcEntered|srcZero, a.xferSrc[r]))
			}
		}

	case op == isa.LLF:
		if r >= 0 && r < maxTrackedRegions {
			setTop(ctxVal(srcOwn, rs1(r)))
		}

	case op == isa.AFB:
		if site, ok := a.recSite(pc); ok {
			setTop(value{kind: vRec, regs: rs1(site)})
		}

	case op == isa.ADD || op == isa.SUB:
		x, y := valAt(s.vals, s.d.lo-2), valAt(s.vals, s.d.lo-1)
		var v value
		var ok bool
		if op == isa.ADD {
			v, ok = addVals(x, y)
		} else {
			v, ok = subVals(x, y)
		}
		if ok {
			setTop(v)
		}

	case op == isa.DUP:
		v := valAt(s.vals, s.d.lo-1)
		if v != topVal {
			if out.vals == nil {
				out.vals = materialize(nil, out.d.lo)
			}
			out.vals[len(out.vals)-1] = v
			out.vals[len(out.vals)-2] = v
		}

	case op == isa.EXCH:
		x, y := valAt(s.vals, s.d.lo-1), valAt(s.vals, s.d.lo-2)
		if x != topVal || y != topVal {
			if out.vals == nil {
				out.vals = materialize(nil, out.d.lo)
			}
			out.vals[len(out.vals)-1] = y
			out.vals[len(out.vals)-2] = x
		}

	case (op >= isa.LL0 && op <= isa.LL7) || op == isa.LLB:
		slot := int(in.Arg)
		if r >= 0 && slot < 64 && s.stored>>uint(slot)&1 == 1 {
			a.addSite(&a.llSites[r], siteLL, r, pc)
			// Prefer the flow-sensitive value (it carries branch
			// refinements the flow-insensitive environment joins away),
			// and mark the copy so a later compare-branch can refine the
			// local through it.
			v := locGet(s.locs, slot)
			if v == topVal {
				v = a.envGet(r, slot)
			}
			v.slot = uint8(slot + 1)
			setTop(v)
		}

	case (op >= isa.SL0 && op <= isa.SL7) || op == isa.SLB:
		slot := int(in.Arg)
		if r >= 0 && slot < 64 {
			out.stored |= uint64(1) << uint(slot)
			sv := valAt(s.vals, s.d.lo-1).clearSlot()
			a.envSet(r, slot, sv)
			out.locs = locSet(s.locs, slot, sv)
			if out.vals != nil {
				out.vals = scrubSlot(out.vals, uint8(slot+1))
			}
		}
	}
}

func materialize(vals []value, n int) []value {
	if vals != nil {
		return vals
	}
	out := make([]value, n)
	for i := range out {
		out[i] = topVal
	}
	return out
}

// envGet / envSet maintain the flow-insensitive per-region local value
// environment; reads are guarded by the per-pc must-assigned bit.
func (a *analyzer) envGet(r, slot int) value {
	env := a.env[r]
	if slot >= len(env) {
		return topVal
	}
	return env[slot]
}

func (a *analyzer) envSet(r, slot int, v value) {
	env := a.env[r]
	for len(env) <= slot {
		env = append(env, value{}) // zero value is never read before a store sets it
	}
	old := env[slot]
	var j value
	if a.envInit[r]>>uint(slot)&1 == 0 {
		a.envInit[r] |= uint64(1) << uint(slot)
		j = v
	} else {
		j = old.join(v)
	}
	env[slot] = j
	a.env[r] = env
	if j != old {
		for _, p := range a.llSites[r] {
			a.enqueue(p)
		}
	}
}

// checkLocal bounds local-variable accesses against the procedure's frame
// class. A load past the frame reads a neighbouring heap word (garbage but
// harmless); a store there corrupts the neighbour, so it blocks the
// certificate.
func (a *analyzer) checkLocal(pc uint32, in *isa.Inst) {
	r := a.regionOf[pc]
	if r < 0 || a.regions[r].fsi >= len(a.p.FrameSizes) {
		return
	}
	payload := a.p.FrameSizes[a.regions[r].fsi]
	off := image.FrameHeaderWords + int(in.Arg)
	if off < payload {
		return
	}
	op := in.Op
	store := (op >= isa.SL0 && op <= isa.SL7) || op == isa.SLB
	if store {
		// The store lands in a neighbouring frame or record: facts about
		// other frames' locals no longer hold.
		if a.values {
			a.setTaint()
		}
		a.diagCert(pc, ReasonLocalRange,
			"%s local %d: word %d of a %d-word frame (class %d)", op, in.Arg, off, payload, a.regions[r].fsi)
	} else {
		a.diag(pc, LevelWarn, ReasonLocalRange,
			"%s local %d: word %d of a %d-word frame (class %d)", op, in.Arg, off, payload, a.regions[r].fsi)
	}
}

// checkGlobal bounds global accesses against the module's declared global
// count; a store past it lands in the neighbouring link vector or frame.
func (a *analyzer) checkGlobal(pc uint32, in *isa.Inst) {
	r := a.regionOf[pc]
	if r < 0 {
		return
	}
	ng := a.regions[r].inst.Module.NumGlobals
	if int(in.Arg) < ng {
		return
	}
	if in.Op == isa.SGB {
		a.diagCert(pc, ReasonGlobalRange,
			"SGB global %d of %d in module %s", in.Arg, ng, a.regions[r].inst.Module.Name)
	} else {
		a.diag(pc, LevelWarn, ReasonGlobalRange,
			"%s global %d of %d in module %s", in.Op, in.Arg, ng, a.regions[r].inst.Module.Name)
	}
}

func (a *analyzer) doJump(pc uint32, in *isa.Inst, s absState, next uint32) {
	info := isa.InfoOf(in.Op)
	after, ok := a.applyEffect(pc, s.d, int(info.Pops), 0)
	if !ok {
		return
	}
	out := s.deriv(after)
	if a.values && after.exact() {
		out.vals = dropPush(s.vals, int(info.Pops), 0)
	}
	t := in.Target
	badTarget := int64(t) >= int64(len(a.code)) || !a.insts[t].Valid()
	if badTarget {
		a.diag(pc, LevelError, ReasonBadJumpTarget,
			"%s to %06x: no instruction decodes there", in.Op, t)
	} else if !a.boundary[t] {
		a.diag(pc, LevelWarn, ReasonJumpIntoOperands,
			"%s lands at %06x, inside another instruction's operand bytes", in.Op, t)
	}
	if !badTarget {
		if st, feasible := a.refineBranch(out, s, in.Op, true); feasible {
			a.propagate(pc, t, st)
		}
	}
	if in.Op != isa.JB && in.Op != isa.JW {
		if st, feasible := a.refineBranch(out, s, in.Op, false); feasible {
			a.propagate(pc, next, st) // conditional: may fall through
		}
	}
}

// negateCmp maps a compare-branch opcode to the opcode whose taken
// condition is its fall-through condition.
func negateCmp(op isa.Op) isa.Op {
	switch op {
	case isa.JEB:
		return isa.JNEB
	case isa.JNEB:
		return isa.JEB
	case isa.JLB:
		return isa.JGEB
	case isa.JGEB:
		return isa.JLB
	case isa.JLEB:
		return isa.JGB
	case isa.JGB:
		return isa.JLEB
	}
	return op
}

// refineBranch narrows the branch operands' ranges on one outgoing edge of
// a conditional jump and writes them back through their local-slot marks,
// pruning edges the operand ranges prove infeasible. Pruning is monotone:
// ranges only grow across the fixpoint, so an edge can only flip from
// infeasible to feasible, never back. The refined facts are what certify a
// guarded loop counter: `while (i < k)` caps i at k-1 inside the body.
func (a *analyzer) refineBranch(out, s absState, op isa.Op, taken bool) (absState, bool) {
	if !a.values || !s.d.exact() || s.vals == nil {
		return out, true
	}
	switch op {
	case isa.JZB, isa.JNZB:
		v := valAt(s.vals, s.d.lo-1)
		wantZero := (op == isa.JZB) == taken
		lo, hi, ok := v.rangeOf()
		if wantZero {
			if ok && lo > 0 {
				return out, false
			}
			return refineSlot(out, v, wordVal(0)), true
		}
		if !ok {
			return out, true
		}
		if hi == 0 {
			return out, false
		}
		if lo == 0 {
			lo = 1
		}
		return refineSlot(out, v, rangeVal(lo, hi)), true

	case isa.JEB, isa.JNEB, isa.JLB, isa.JLEB, isa.JGB, isa.JGEB:
		x, y := valAt(s.vals, s.d.lo-2), valAt(s.vals, s.d.lo-1)
		xlo, xhi, xok := x.rangeOf()
		ylo, yhi, yok := y.rangeOf()
		if !xok || !yok {
			return out, true
		}
		cond := op
		if !taken {
			cond = negateCmp(op)
		}
		if cond != isa.JEB && cond != isa.JNEB && (xhi > 0x7FFF || yhi > 0x7FFF) {
			// The machine compares signed; range refinement is only sound
			// where the signed and unsigned orders agree.
			return out, true
		}
		rxlo, rxhi, rylo, ryhi := xlo, xhi, ylo, yhi
		switch cond {
		case isa.JEB: // x == y
			rxlo, rylo = maxW(xlo, ylo), maxW(xlo, ylo)
			rxhi, ryhi = minW(xhi, yhi), minW(xhi, yhi)
		case isa.JNEB: // x != y
			if xlo == xhi && ylo == yhi && xlo == ylo {
				return out, false
			}
			if ylo == yhi { // trim a singleton off x's endpoints
				if xlo == ylo {
					rxlo = xlo + 1
				} else if xhi == ylo {
					rxhi = xhi - 1
				}
			}
			if xlo == xhi {
				if ylo == xlo {
					rylo = ylo + 1
				} else if yhi == xlo {
					ryhi = yhi - 1
				}
			}
		case isa.JLB: // x < y
			if yhi == 0 {
				return out, false
			}
			rxhi = minW(xhi, yhi-1)
			rylo = maxW(ylo, xlo+1)
		case isa.JLEB: // x <= y
			rxhi = minW(xhi, yhi)
			rylo = maxW(ylo, xlo)
		case isa.JGB: // x > y
			if xhi == 0 {
				return out, false
			}
			rxlo = maxW(xlo, ylo+1)
			ryhi = minW(yhi, xhi-1)
		case isa.JGEB: // x >= y
			rxlo = maxW(xlo, ylo)
			ryhi = minW(yhi, xhi)
		}
		if rxlo > rxhi || rylo > ryhi {
			return out, false
		}
		if rxlo != xlo || rxhi != xhi {
			out = refineSlot(out, x, rangeVal(rxlo, rxhi))
		}
		if rylo != ylo || ryhi != yhi {
			out = refineSlot(out, y, rangeVal(rylo, ryhi))
		}
		return out, true
	}
	return out, true
}

// refineSlot writes a refined operand value back into the flow-sensitive
// local it was loaded from, if the copy still carries its load mark.
func refineSlot(out absState, v, refined value) absState {
	if v.slot != 0 {
		out.locs = locSet(out.locs, int(v.slot)-1, refined)
	}
	return out
}

func minW(a, b mem.Word) mem.Word {
	if a < b {
		return a
	}
	return b
}

func maxW(a, b mem.Word) mem.Word {
	if a > b {
		return a
	}
	return b
}

// doRet folds the state at a RET into its procedure's summary (result
// depth, result values, freed set, retain discipline) and requeues every
// call and transfer site waiting on it.
func (a *analyzer) doRet(pc uint32, s absState) {
	r := a.regionOf[pc]
	if r < 0 {
		a.diagCert(pc, ReasonCrossProcFlow, "RET outside any procedure; its result depth cannot be attributed")
		return
	}
	a.retSeen[r] = true
	if !s.ret {
		a.retainedAll[r] = false
	}
	changed := false
	if !a.sumOK[r] {
		a.sumOK[r] = true
		a.sum[r] = s.d
		changed = true
	} else if j := a.sum[r].join(s.d); j != a.sum[r] {
		a.sum[r] = j
		changed = true
	}
	if a.values {
		rv := sanitizeSummary(s.vals)
		if !a.sumValsN[r] {
			a.sumValsN[r] = true
			a.sumVals[r] = rv
			changed = true
		} else if j := joinVals(a.sumVals[r], rv); !valsEqual(j, a.sumVals[r]) {
			a.sumVals[r] = j
			changed = true
		}
	}
	if u := a.sumFreed[r].union(s.freed); u != a.sumFreed[r] {
		a.sumFreed[r] = u
		changed = true
	}
	if !changed {
		return
	}
	for _, site := range a.deps[r] {
		a.enqueue(site)
	}
	if r < maxTrackedRegions && a.handlers.has(int(r)) {
		for _, site := range a.trapSites {
			a.enqueue(site)
		}
	}
}

// sanitizeSummary strips frame-local facts from a result-stack summary
// before it crosses the procedure boundary: record pointers name the
// callee's allocation sites (whose freed-record set the caller does not
// carry), and slot marks name the callee's locals.
func sanitizeSummary(vals []value) []value {
	clean := true
	for _, v := range vals {
		if v.kind == vRec || v.slot != 0 {
			clean = false
			break
		}
	}
	if clean {
		return vals
	}
	out := make([]value, len(vals))
	for i, v := range vals {
		if v.kind == vRec {
			out[i] = topVal
		} else {
			out[i] = v.clearSlot()
		}
	}
	return out
}

func valsEqual(x, y []value) bool {
	if (x == nil) != (y == nil) || len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func (a *analyzer) doCall(pc uint32, in *isa.Inst, s absState, next uint32) {
	op := in.Op
	r := a.regionOf[pc]
	var entry uint32
	var fsi int
	var ok bool

	switch {
	case op.IsExternalCall():
		if r < 0 {
			a.diagCert(pc, ReasonIrregularCall, "external call outside any procedure")
			a.mayEdge(pc)
			a.propagate(pc, next, topState(s))
			return
		}
		inst := a.regions[r].inst
		slot := int(in.Arg)
		ctx, present := a.data[inst.GF-1-mem.Addr(slot)]
		if !present || ctx == 0 {
			// The machine XFERs to NIL: the computation halts there.
			a.diagCert(pc, ReasonUnresolvedLink,
				"link vector slot %d of %s is empty", slot, inst.Module.Name)
			a.mayEdge(pc)
			return
		}
		if !image.IsProc(ctx) {
			// The F3 fallback: xferOut plus a transfer to whatever the slot
			// holds — outside the value model entirely.
			if a.values {
				a.setTaint()
			}
			a.diagCert(pc, ReasonUnresolvedLink,
				"link vector slot %d of %s holds %04x, not a procedure descriptor", slot, inst.Module.Name, ctx)
			a.mayEdge(pc)
			a.propagate(pc, next, topState(s))
			return
		}
		entry, fsi, ok = a.resolveDescriptor(pc, ctx, ReasonBadDescriptor, "")

	case op.IsLocalCall():
		if r < 0 {
			a.diagCert(pc, ReasonIrregularCall, "local call outside any procedure")
			a.mayEdge(pc)
			a.propagate(pc, next, topState(s))
			return
		}
		inst := a.regions[r].inst
		if ev := int(in.Arg); ev >= len(inst.EVOffsets) {
			a.diag(pc, LevelError, ReasonBadEntryVector,
				"%s entry %d past the %d-slot entry vector of %s", op, ev, len(inst.EVOffsets), inst.Module.Name)
			return
		}
		entry, fsi, ok = a.resolveEntry(pc, inst.CodeBase, int(in.Arg), ReasonBadEntryVector, "")

	default: // DCALL / SDCALL
		if !in.CallOK {
			a.diag(pc, LevelError, ReasonBadCallHeader,
				"%s header at %06x lies outside the %d-byte code space", op, in.Target, len(a.code))
			return
		}
		entry = in.Target + isa.HeaderSkip
		fsi = int(in.FSI)
		if int64(entry) >= int64(len(a.code)) || !a.insts[entry].Valid() {
			a.diag(pc, LevelError, ReasonBadCallHeader,
				"%s entry %06x does not decode", op, entry)
			return
		}
		if fsi >= len(a.p.FrameSizes) {
			a.diag(pc, LevelError, ReasonBadFrameSize,
				"%s header class %d outside the %d-class frame-size table", op, fsi, len(a.p.FrameSizes))
			return
		}
		ok = true
	}
	if !ok {
		return
	}
	a.finishCall(pc, next, s, entry, fsi)
}

// finishCall wires a resolved call site: the arg-record fit check, the
// call edge, and the interprocedural fall-through (the callee's summary
// becomes the caller's state after the call).
func (a *analyzer) finishCall(pc, next uint32, s absState, entry uint32, fsi int) {
	a.edge(pc, entry, EdgeCall)
	if payload := a.p.FrameSizes[fsi]; image.FrameHeaderWords+s.d.hi > payload {
		a.diagCert(pc, ReasonArgOverrun,
			"call can carry %d stack words into a %d-word frame (class %d)", s.d.hi, payload, fsi)
	}
	cr, isEntry := a.entryRegion[entry]
	if !isEntry {
		// The target decodes but is not a procedure entry the linker laid
		// out: its RETs cannot be attributed, so its result depth is
		// unknown.
		if a.values {
			a.setTaint()
		}
		a.diagCert(pc, ReasonIrregularCall,
			"call target %06x is not a linked procedure entry", entry)
		a.joinInto(entry, a.entryState(s.freed))
		a.propagate(pc, next, topState(s))
		return
	}
	a.markCallEntered(cr)
	a.joinInto(entry, a.entryState(s.freed))
	key := uint64(cr)<<32 | uint64(pc)
	if !a.depSeen[key] {
		a.depSeen[key] = true
		a.deps[cr] = append(a.deps[cr], pc)
	}
	if a.sumOK[cr] {
		out := s.deriv(a.sum[cr])
		out.freed = out.freed.union(a.sumFreed[cr])
		if a.values && out.d.exact() && a.sumValsN[cr] && len(a.sumVals[cr]) == out.d.lo {
			out.vals = a.sumVals[cr]
		}
		a.propagate(pc, next, out)
	}
	// Summary still unknown: the callee provably never returns (yet); the
	// fall-through stays unreached until a RET appears.
}

// xferFallback is the conservative XFERO semantics: target and resumption
// stack unknown.
func (a *analyzer) xferFallback(pc uint32, s absState, next uint32) {
	if _, ok := a.applyEffect(pc, s.d, 1, 0); !ok {
		return
	}
	a.diagCert(pc, ReasonDynamicTransfer, "XFERO target and resumption stack are unknown")
	a.mayEdge(pc)
	a.propagate(pc, next, topState(s))
}

func (a *analyzer) doXfer(pc uint32, s absState, next uint32) {
	cur := int(a.regionOf[pc])
	if !a.values || cur < 0 || cur >= maxTrackedRegions {
		if a.values {
			a.setTaint()
		}
		a.xferFallback(pc, s, next)
		return
	}
	if !s.d.exact() || s.vals == nil || s.d.lo < 1 {
		a.setTaint()
		a.xferFallback(pc, s, next)
		return
	}
	v := s.vals[len(s.vals)-1]
	dx := s.d.lo - 1 // cross-depth: the words carried to the target

	// Any successful transfer suspends this frame here; a later transfer
	// into this region resumes it with the pool state.
	a.addSite(&a.xferSites[cur], siteXfer, cur, pc)

	switch {
	case v.kind == vWord && v.word == 0:
		// Transfer to NIL: the computation halts. No successor.
		return

	case v.isProcWord():
		// A descriptor: the machine enterProcs it with this frame as the
		// return link, so the callee's RETURN resumes us with its results —
		// call semantics on a transfer opcode.
		T, ok := a.resolveDescQuiet(v.word)
		if !ok {
			a.setTaint()
			a.xferFallback(pc, s, next)
			return
		}
		treg := a.regions[T]
		a.edge(pc, treg.entry, EdgeXfer)
		if payload := a.p.FrameSizes[treg.fsi]; image.FrameHeaderWords+dx > payload {
			a.diagCert(pc, ReasonArgOverrun,
				"transfer can carry %d stack words into a %d-word frame (class %d)", dx, payload, treg.fsi)
		}
		a.joinInto(treg.entry, a.entryState(s.freed))
		a.xferSrcAdd(T, cur)
		key := uint64(T)<<32 | uint64(pc)
		if !a.depSeen[key] {
			a.depSeen[key] = true
			a.deps[T] = append(a.deps[T], pc)
		}
		if a.sumOK[T] {
			out := s.deriv(a.sum[T])
			out.freed = out.freed.union(a.sumFreed[T])
			a.propagate(pc, next, out)
		}

	case v.kind == vCtx && v.transferable():
		if v.regs.intersects(s.freed) {
			a.setTaint()
			a.xferFallback(pc, s, next)
			return
		}
		v.regs.forEach(func(T int) {
			treg := a.regions[T]
			a.edge(pc, treg.entry, EdgeXfer)
			if v.src&srcCreated != 0 {
				// The target may be an embryo: starting it delivers the
				// carried words into its fresh frame's locals.
				if payload := a.p.FrameSizes[treg.fsi]; image.FrameHeaderWords+dx > payload {
					a.diagCert(pc, ReasonArgOverrun,
						"transfer can carry %d stack words into a %d-word frame (class %d)", dx, payload, treg.fsi)
				}
				a.joinInto(treg.entry, a.entryState(s.freed))
			}
			a.bumpPool(T, dx, cur, s.freed)
		})

	default:
		// Unknown word, the running frame itself, or a possibly
		// call-suspended frame: outside the pool model.
		a.setTaint()
		a.xferFallback(pc, s, next)
		return
	}

	// Resumption of this frame: the depths (and freed sets) of transfers
	// targeting this region. Until a pool forms, the site stays suspended.
	if a.poolOK[cur] {
		out := s.deriv(a.pool[cur])
		out.freed = out.freed.union(a.poolFreed[cur])
		a.propagate(pc, next, out)
	}
}

func (a *analyzer) doTrapB(pc uint32, s absState, next uint32) {
	if !a.values {
		a.mayEdge(pc)
		if a.trapsPossible {
			// An in-machine handler's RETURN restores the trapper's
			// operands beneath the handler's results: at least d.lo words,
			// at most a full stack.
			a.propagate(pc, next, s.deriv(interval{s.d.lo, maxDepth}))
			return
		}
		if after, ok := a.applyEffect(pc, s.d, 0, 1); ok {
			a.propagate(pc, next, s.deriv(after))
		}
		return
	}
	a.addTrapSite(pc)
	var out interval
	any := false
	// Unarmed path: the Go hook pushes the unhandled marker (on certified
	// machines an unarmed TRAPB is a clean terminal error instead). A
	// definite or possible overflow here is reported by certify() only if
	// no reachable STRAP ever arms a handler, mirroring the conservative
	// analysis's two-pass behaviour.
	if s.d.lo+1 <= maxDepth {
		hi := s.d.hi + 1
		if hi > maxDepth {
			hi = maxDepth
		}
		out, any = interval{s.d.lo + 1, hi}, true
	}
	freed := s.freed
	if a.armed {
		if rh, ok := a.handlerResults(); ok {
			lo, hi := s.d.lo+rh.lo, s.d.hi+rh.hi
			if hi > maxDepth {
				a.diagCert(pc, ReasonMaybeOverflow,
					"trap handler results can restore to depth %d past the %d-word stack", hi, maxDepth)
				hi = maxDepth
			}
			if lo <= maxDepth { // else: every armed execution faults on restore
				armedAfter := interval{lo, hi}
				if any {
					out = out.join(armedAfter)
				} else {
					out, any = armedAfter, true
				}
				freed = freed.union(a.handlerFreed())
			}
			a.handlers.forEach(func(T int) {
				a.edge(pc, a.regions[T].entry, EdgeTrap)
			})
		}
	}
	if any {
		o := s.deriv(out)
		o.freed = freed
		if s.d.exact() && out.exact() && out.lo == s.d.lo+1 {
			// Both paths preserve the operand prefix and push one word.
			o.vals = dropPush(s.vals, 0, 1)
		}
		a.propagate(pc, next, o)
	}
}

func (a *analyzer) doDivMod(pc uint32, s absState, next uint32) {
	after, ok := a.applyEffect(pc, s.d, 2, 1)
	if !ok {
		return
	}
	if !a.values {
		if a.trapsPossible {
			// Division by zero can transfer to a handler; its result depth
			// is unknown (handler results replace the quotient).
			a.propagate(pc, next, s.deriv(interval{after.lo - 1, maxDepth}))
			return
		}
		a.propagate(pc, next, s.deriv(after))
		return
	}
	a.addTrapSite(pc)
	out := after
	freed := s.freed
	if a.armed {
		if rh, ok := a.handlerResults(); ok {
			base := interval{after.lo - 1, after.hi - 1} // operands consumed, quotient not pushed
			lo, hi := base.lo+rh.lo, base.hi+rh.hi
			if hi > maxDepth {
				a.diagCert(pc, ReasonMaybeOverflow,
					"trap handler results can restore to depth %d past the %d-word stack", hi, maxDepth)
				hi = maxDepth
			}
			if lo <= maxDepth {
				out = out.join(interval{lo, hi})
				freed = freed.union(a.handlerFreed())
			}
			a.handlers.forEach(func(T int) {
				a.edge(pc, a.regions[T].entry, EdgeTrap)
			})
		}
	}
	o := s.deriv(out)
	o.freed = freed
	if out == after && out.exact() {
		o.vals = dropPush(s.vals, 2, 1)
	}
	a.propagate(pc, next, o)
}

func (a *analyzer) doStrap(pc uint32, s absState, next uint32) {
	if a.values && s.d.exact() && s.vals != nil && s.d.lo >= 1 {
		v := s.vals[len(s.vals)-1]
		out := s.deriv(interval{s.d.lo - 1, s.d.lo - 1})
		out.vals = dropPush(s.vals, 1, 0)
		if v.kind == vWord && v.word == 0 {
			// Disarms the trap handler: no dynamic behaviour at all.
			a.propagate(pc, next, out)
			return
		}
		if v.isProcWord() {
			if T, ok := a.resolveDescQuiet(v.word); ok {
				a.edge(pc, a.regions[T].entry, EdgeTrap)
				if !a.armed || !a.handlers.has(T) {
					a.armed = true
					a.handlers = a.handlers.add(T)
					a.markCallEntered(T)
					for _, site := range a.trapSites {
						a.enqueue(site)
					}
				}
				a.propagate(pc, next, out)
				return
			}
		}
		// A word the machine would transfer into blindly on the next trap.
		a.setTaint()
	} else if a.values {
		a.setTaint()
	}
	a.sawStrap = true
	a.diagCert(pc, ReasonDynamicTransfer, "STRAP installs a dynamic trap handler")
	a.mayEdge(pc)
	if after, ok := a.applyEffect(pc, s.d, 1, 0); ok {
		a.propagate(pc, next, s.deriv(after))
	}
}

func (a *analyzer) doCocreate(pc uint32, in *isa.Inst, s absState, next uint32) {
	if !a.values {
		a.diagCert(pc, ReasonDynamicTransfer, "COCREATE constructs a coroutine context resumed outside call/return structure")
		a.mayEdge(pc)
		if after, ok := a.applyEffect(pc, s.d, 1, 1); ok {
			a.propagate(pc, next, s.deriv(after))
		}
		return
	}
	// COCREATE itself is safe: a non-descriptor operand is a clean terminal
	// error and a descriptor that doesn't resolve never starts running. The
	// result is a tracked embryo only for a known constant descriptor;
	// anything else becomes an untracked word whose later transfer or free
	// (if any) falls out of the model there.
	after, ok := a.applyEffect(pc, s.d, 1, 1)
	if !ok {
		return
	}
	out := s.deriv(after)
	if after.exact() {
		out.vals = dropPush(s.vals, 1, 1)
		v := valAt(s.vals, s.d.lo-1)
		if v.isProcWord() {
			if T, ok := a.resolveDescQuiet(v.word); ok {
				if out.vals == nil {
					out.vals = materialize(nil, after.lo)
				}
				out.vals[len(out.vals)-1] = ctxVal(srcCreated, rs1(T))
			}
		}
	}
	a.propagate(pc, next, out)
}

func (a *analyzer) doFree(pc uint32, s absState, next uint32) {
	fallback := func() {
		a.diagCert(pc, ReasonUnsafeFree, "FREE releases a context the verifier cannot track")
		if after, ok := a.applyEffect(pc, s.d, 1, 0); ok {
			a.propagate(pc, next, s.deriv(after))
		}
	}
	if !a.values {
		fallback()
		return
	}
	if !s.d.exact() || s.vals == nil || s.d.lo < 1 {
		a.setTaint()
		fallback()
		return
	}
	v := s.vals[len(s.vals)-1]
	switch {
	case v.kind == vWord:
		if image.IsProc(v.word) || v.word == 0 {
			// ErrBadContext: a clean terminal error on every machine.
			return
		}
		// Frees a raw address.
		a.setTaint()
		fallback()

	case v.kind == vCtx && v.freeable():
		if v.regs.intersects(s.freed) {
			// A frame of the same region may already be gone: FREE would
			// tear down recycled storage.
			a.setTaint()
			fallback()
			return
		}
		// Own-frame frees additionally require the retain discipline;
		// certify() checks that against the final summaries.
		out := s.deriv(interval{s.d.lo - 1, s.d.lo - 1})
		out.freed = s.freed.union(v.regs)
		out.vals = dropPush(s.vals, 1, 0)
		a.propagate(pc, next, out)

	default:
		a.setTaint()
		fallback()
	}
}
